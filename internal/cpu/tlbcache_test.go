package cpu_test

// Regression tests for the one-entry tlbCache invalidation edges: a
// cached va→pa translation must die when the backing TLB entry is
// rewritten (TLBWI, TLBWR) or the address space changes (EntryHi ASID
// switch). Each scenario runs under both engines — the predecode fast
// path shares the icache with the slow path, so these edges guard it
// too.

import (
	"fmt"
	"testing"

	"systrace/internal/cpu"
	"systrace/internal/isa"
	"systrace/internal/machine"
)

const (
	tlbOldPA = 0x5000
	tlbNewPA = 0x6000
	tlbVA    = 0x1000
	oldWord  = 0xAAAA5555
	newWord  = 0xBBBB6666
	eloVD    = cpu.EloV | cpu.EloD
)

// tlbM builds a machine with distinguishable words at the two physical
// pages a kuseg VA will be remapped between.
func tlbM(t *testing.T, pd bool) *machine.Machine {
	t.Helper()
	m := newM()
	m.CPU.SetPredecode(pd)
	m.RAM.WriteWord(tlbOldPA, oldWord)
	m.RAM.WriteWord(tlbNewPA, newWord)
	return m
}

func bothEngines(t *testing.T, f func(t *testing.T, pd bool)) {
	for _, pd := range []bool{true, false} {
		t.Run(fmt.Sprintf("predecode=%v", pd), func(t *testing.T) { f(t, pd) })
	}
}

// TestDCacheStaleAfterTLBWI: load through a wired mapping, rewrite
// that same TLB slot to a new frame with TLBWI, load again — the
// second load must see the new frame, not the cached translation.
func TestDCacheStaleAfterTLBWI(t *testing.T) {
	bothEngines(t, func(t *testing.T, pd bool) {
		m := tlbM(t, pd)
		m.CPU.TLB[8] = cpu.TLBEntry{Hi: tlbVA, Lo: tlbOldPA | eloVD}
		m.CPU.GPR[isa.RegT0] = tlbVA
		put(m, 0x80001000,
			isa.ORI(isa.RegK0, 0, tlbVA),
			isa.MTC0(isa.RegK0, isa.C0EntryHi),
			isa.ORI(isa.RegK1, 0, tlbNewPA|eloVD),
			isa.MTC0(isa.RegK1, isa.C0EntryLo),
			isa.ORI(isa.RegT2, 0, 8),
			isa.MTC0(isa.RegT2, isa.C0Index),
			isa.LW(isa.RegT1, isa.RegT0, 0), // fills dcache va 0x1000 → pa 0x5000
			isa.TLBWI(),                     // rewrites slot 8 → pa 0x6000
			isa.LW(isa.RegT3, isa.RegT0, 0), // must translate afresh
			isa.BREAK(0),
		)
		m.CPU.PC = 0x80001000
		if err := m.Run(100); err != nil {
			t.Fatal(err)
		}
		if got := m.CPU.GPR[isa.RegT1]; got != oldWord {
			t.Errorf("first load = 0x%08x, want 0x%08x", got, oldWord)
		}
		if got := m.CPU.GPR[isa.RegT3]; got != newWord {
			t.Errorf("load after TLBWI = 0x%08x, want 0x%08x (stale dcache translation)", got, newWord)
		}
	})
}

// TestDCacheStaleAfterTLBWR: same shape, but the rewrite goes through
// TLBWR with Random steered (via its per-Step decrement) to land on
// the slot holding the cached mapping.
func TestDCacheStaleAfterTLBWR(t *testing.T) {
	bothEngines(t, func(t *testing.T, pd bool) {
		m := tlbM(t, pd)
		const idx = 20
		m.CPU.TLB[idx] = cpu.TLBEntry{Hi: tlbVA, Lo: tlbOldPA | eloVD}
		m.CPU.GPR[isa.RegT0] = tlbVA
		put(m, 0x80001000,
			isa.ORI(isa.RegK0, 0, tlbVA), // step 1
			isa.MTC0(isa.RegK0, isa.C0EntryHi),
			isa.ORI(isa.RegK1, 0, tlbNewPA|eloVD),
			isa.MTC0(isa.RegK1, isa.C0EntryLo),
			isa.LW(isa.RegT1, isa.RegT0, 0), // step 5
			isa.TLBWR(),                     // step 6: Random has decremented to idx
			isa.LW(isa.RegT3, isa.RegT0, 0),
			isa.BREAK(0),
		)
		// Random decrements before each exec; TLBWR is the 6th
		// instruction, so preset Random = idx + 6 to hit slot idx.
		m.CPU.CP0.Random = idx + 6
		m.CPU.PC = 0x80001000
		if err := m.Run(100); err != nil {
			t.Fatal(err)
		}
		if got := m.CPU.TLB[idx].Lo; got != tlbNewPA|eloVD {
			t.Fatalf("TLBWR wrote elsewhere: TLB[%d].Lo = 0x%08x", idx, got)
		}
		if got := m.CPU.GPR[isa.RegT1]; got != oldWord {
			t.Errorf("first load = 0x%08x, want 0x%08x", got, oldWord)
		}
		if got := m.CPU.GPR[isa.RegT3]; got != newWord {
			t.Errorf("load after TLBWR = 0x%08x, want 0x%08x (stale dcache translation)", got, newWord)
		}
	})
}

// TestDCacheStaleAfterASIDSwitch: a non-global mapping cached under
// one ASID must not satisfy a load after EntryHi switches to another
// ASID — the load must miss into the UTLB refill path instead.
func TestDCacheStaleAfterASIDSwitch(t *testing.T) {
	bothEngines(t, func(t *testing.T, pd bool) {
		m := tlbM(t, pd)
		const asid1 = 1 << cpu.ASIDShift
		const asid2 = 2 << cpu.ASIDShift
		m.CPU.TLB[8] = cpu.TLBEntry{Hi: tlbVA | asid1, Lo: tlbOldPA | eloVD}
		m.CPU.CP0.EntryHi = asid1
		m.CPU.GPR[isa.RegT0] = tlbVA
		put(m, 0x80000000, isa.BREAK(0)) // UTLB refill vector: stop there
		put(m, 0x80001000,
			isa.LW(isa.RegT1, isa.RegT0, 0), // hits under asid1
			isa.ORI(isa.RegK0, 0, asid2),
			isa.MTC0(isa.RegK0, isa.C0EntryHi),
			isa.LW(isa.RegT3, isa.RegT0, 0), // must UTLB-miss, not hit the cache
			isa.BREAK(1),                    // not reached
		)
		m.CPU.PC = 0x80001000
		if err := m.Run(100); err != nil {
			t.Fatal(err)
		}
		if got := m.CPU.GPR[isa.RegT1]; got != oldWord {
			t.Errorf("load under asid1 = 0x%08x, want 0x%08x", got, oldWord)
		}
		if got := m.CPU.GPR[isa.RegT3]; got != 0 {
			t.Errorf("load under asid2 returned 0x%08x via a stale cached translation", got)
		}
		if got := m.CPU.Stat.UTLBMisses; got != 1 {
			t.Errorf("UTLBMisses = %d, want 1", got)
		}
		if got := m.CPU.CP0.EPC; got != 0x8000100c {
			t.Errorf("EPC = 0x%08x, want 0x8000100c (the missing load)", got)
		}
	})
}
