package cpu

import (
	"math"

	"systrace/internal/isa"
	"systrace/internal/obs"
)

// refill fills a one-entry translation cache for va. Instruction-side
// refills (fetch) also bind c.ipd to the predecoded frame for the new
// physical page, decoding it on first execution.
//
// Data refills go through the second-level cache: a hit copies the
// saved translation without walking the TLB. A hit still recloses the
// protection that translate would check — kernel segments demand
// kernel mode — and the read/write split plus the generation bump in
// invalidateCaches keeps dirty-bit and TLB-rewrite semantics exact.
func (c *CPU) refill(tc *tlbCache, va uint32, store, fetch bool) bool {
	vp := va & EntryHiVPN
	if !fetch {
		s := &c.tc2r[vp>>PageShift&(tc2Sets-1)]
		if store {
			s = &c.tc2w[vp>>PageShift&(tc2Sets-1)]
		}
		if s.vpage == vp && s.gen == c.tcGen && (va < KUSegEnd || c.KernelMode()) {
			*tc = *s
			return true
		}
	}
	pa, cached, ok := c.translate(va, store, fetch)
	if !ok {
		return false
	}
	tc.vpage = vp
	tc.ppage = pa & EntryHiVPN
	tc.ram = c.Bus.RAMPage(pa)
	tc.cached = cached
	// Device space and uncached segments bypass the fast path.
	if !cached {
		tc.ram = nil
	}
	if !fetch {
		tc.gen = c.tcGen
		if store {
			c.tc2w[vp>>PageShift&(tc2Sets-1)] = *tc
		} else {
			c.tc2r[vp>>PageShift&(tc2Sets-1)] = *tc
		}
	}
	if fetch {
		c.ipd = nil
		if tc.ram != nil && !c.pd.off {
			c.ipdFrame = tc.ppage >> PageShift
			c.ipd = c.pdFrameFor(tc.ppage, tc.ram)
		}
	}
	return true
}

// fetchWord reads the instruction at va.
func (c *CPU) fetchWord(va uint32) (uint32, bool) {
	if va&3 != 0 {
		c.addressError(va, false)
		return 0, false
	}
	if va&EntryHiVPN != c.icache.vpage {
		if !c.refill(&c.icache, va, false, true) {
			return 0, false
		}
	}
	pa := c.icache.ppage | va&(PageSize-1)
	if c.obsFetch {
		c.Obs.Fetch(va, pa, c.KernelMode(), c.icache.cached)
	}
	if r := c.icache.ram; r != nil {
		off := pa & (PageSize - 1)
		return uint32(r[off])<<24 | uint32(r[off+1])<<16 | uint32(r[off+2])<<8 | uint32(r[off+3]), true
	}
	v, ok := c.Bus.FetchWord(pa)
	if !ok {
		c.fault("instruction bus error at va=0x%08x pa=0x%08x", va, pa)
	}
	return v, ok
}

// load performs a data read of size bytes (1, 2, 4, or 8 for FP).
func (c *CPU) load(va uint32, size int) (uint64, bool) {
	if va&uint32(size-1) != 0 && size != 8 || size == 8 && va&7 != 0 {
		c.addressError(va, false)
		return 0, false
	}
	if va&EntryHiVPN != c.dcache.vpage {
		if !c.refill(&c.dcache, va, false, false) {
			return 0, false
		}
	}
	pa := c.dcache.ppage | va&(PageSize-1)
	if c.obsLoad {
		c.Obs.Load(va, pa, size, c.KernelMode(), c.dcache.cached)
	}
	if r := c.dcache.ram; r != nil {
		off := pa & (PageSize - 1)
		switch size {
		case 1:
			return uint64(r[off]), true
		case 2:
			return uint64(r[off])<<8 | uint64(r[off+1]), true
		case 4:
			return uint64(r[off])<<24 | uint64(r[off+1])<<16 | uint64(r[off+2])<<8 | uint64(r[off+3]), true
		default:
			hi := uint64(r[off])<<24 | uint64(r[off+1])<<16 | uint64(r[off+2])<<8 | uint64(r[off+3])
			lo := uint64(r[off+4])<<24 | uint64(r[off+5])<<16 | uint64(r[off+6])<<8 | uint64(r[off+7])
			return hi<<32 | lo, true
		}
	}
	c.pdExit = true // device read: register state may change
	c.devAccess(pa, 0)
	if size == 8 {
		hi, ok1 := c.Bus.Read(pa, 4)
		lo, ok2 := c.Bus.Read(pa+4, 4)
		if !ok1 || !ok2 {
			c.fault("data bus error at va=0x%08x pa=0x%08x", va, pa)
			return 0, false
		}
		return uint64(hi)<<32 | uint64(lo), true
	}
	v, ok := c.Bus.Read(pa, size)
	if !ok {
		c.fault("data bus error at va=0x%08x pa=0x%08x", va, pa)
	}
	return uint64(v), ok
}

// store performs a data write of size bytes.
func (c *CPU) store(va uint32, size int, v uint64) bool {
	if va&uint32(size-1) != 0 && size != 8 || size == 8 && va&7 != 0 {
		c.addressError(va, true)
		return false
	}
	if va&EntryHiVPN != c.wcache.vpage {
		if !c.refill(&c.wcache, va, true, false) {
			return false
		}
	}
	pa := c.wcache.ppage | va&(PageSize-1)
	if c.obsStore {
		c.Obs.Store(va, pa, size, c.KernelMode(), c.wcache.cached)
	}
	// Stores into a predecoded text frame drop its stale micro-ops
	// (self-modifying code, the kernel's exec-time text copy, epoxie
	// images written as data). Device pages have frame numbers past
	// the bitmap, so the common store never reaches dropFrame.
	if fn := pa >> PageShift; int(fn>>6) < len(c.pd.bitmap) && c.pd.bitmap[fn>>6]&(1<<(fn&63)) != 0 {
		c.dropFrame(fn)
	}
	if r := c.wcache.ram; r != nil {
		off := pa & (PageSize - 1)
		switch size {
		case 1:
			r[off] = byte(v)
		case 2:
			r[off] = byte(v >> 8)
			r[off+1] = byte(v)
		case 4:
			r[off] = byte(v >> 24)
			r[off+1] = byte(v >> 16)
			r[off+2] = byte(v >> 8)
			r[off+3] = byte(v)
		default:
			for k := 0; k < 8; k++ {
				r[off+uint32(k)] = byte(v >> (56 - 8*k))
			}
		}
		return true
	}
	c.pdExit = true // device write: may reprogram a device event
	c.devAccess(pa, 1)
	if size == 8 {
		ok1 := c.Bus.Write(pa, 4, uint32(v>>32))
		ok2 := c.Bus.Write(pa+4, 4, uint32(v))
		if !ok1 || !ok2 {
			c.fault("data bus error at va=0x%08x pa=0x%08x", va, pa)
			return false
		}
		return true
	}
	if !c.Bus.Write(pa, size, uint32(v)) {
		c.fault("data bus error at va=0x%08x pa=0x%08x", va, pa)
		return false
	}
	return true
}

// Step executes one instruction (or takes one exception/interrupt).
// It reports whether the CPU can continue.
//
// The hot path dispatches a micro-op straight out of the predecoded
// frame for the current instruction page: no byte reassembly, no field
// extraction, retirement class batched from the uop instead of the
// opClass table lookup. Anything that can't use it — page crossing,
// uncached or device fetch, misaligned PC, predecode disabled — falls
// through to stepSlow, which is the retained reference interpreter.
func (c *CPU) Step() bool {
	if c.Halted {
		return false
	}
	// Observers are attached by plain assignment to c.Obs (machine
	// timing models, tests); fold the nil check into per-port flags
	// once per attach/detach instead of per event.
	if (c.Obs != nil) != c.obsAny {
		c.syncObs()
	}
	if c.IRQPending() {
		c.Stat.Interrupts++
		c.Exception(ExcInt, VecGeneral)
	}
	pc := c.PC
	if pc&EntryHiVPN == c.icache.vpage && c.ipd != nil && pc&3 == 0 {
		c.pd.hits++
		u := &c.ipd.ops[pc>>2&(pdFrameWords-1)]
		if c.obsFetch {
			c.Obs.Fetch(pc, c.icache.ppage|pc&(PageSize-1), c.KernelMode(), c.icache.cached)
		}
		nextPC := pc + 4
		if c.inDelay {
			nextPC = c.delayTarget
			c.inDelay = false
			c.execInSlot = true
		}
		if c.CP0.Random <= TLBWired {
			c.CP0.Random = NTLB - 1
		} else {
			c.CP0.Random--
		}
		ok := c.execU(u)
		c.Stat.Instret++ // a faulting instruction still issued
		c.Stat.Classes[u.cls]++
		c.execInSlot = false
		if ok {
			c.PC = nextPC
		}
		return !c.Halted
	}
	return c.stepSlow()
}

// StepN retires up to max instructions in one tight loop on the
// predecode fast path and returns the number retired (possibly 0).
//
// The per-Step checks Step repeats every instruction are hoisted to
// the loop entry, which is only sound because nothing inside the batch
// can change them unnoticed: interrupt lines rise only in device
// Advance calls (between machine bursts, never mid-batch), and the
// pieces the CPU itself can change route through c.pdExit — Exception
// sets it (Status stack push), COP0 dispatch sets it (MTC0/RFE/TLB
// ops), and device bus accesses set it (a store can reprogram a device
// event or ack an interrupt line). The loop returns after any such
// instruction, and the caller re-enters through Step, which performs
// the full per-instruction checks. An attached observer disables the
// batch entirely so event streams stay per-instruction exact.
func (c *CPU) StepN(max uint64) uint64 {
	if c.Halted || max == 0 {
		return 0
	}
	if (c.Obs != nil) != c.obsAny {
		c.syncObs()
	}
	if c.obsAny || c.IRQPending() {
		return 0
	}
	ipd := c.ipd
	if ipd == nil {
		return 0
	}
	// A profiler batch ends exactly on the sample boundary, so the
	// sampler below the loop observes the boundary PC; one branch
	// here, amortized over the whole batch (see obs.go).
	if c.prof.fn != nil {
		max = c.profClamp(max)
	}
	c.pdExit = false
	var n uint64
	// Superblock entry: a hot batch head may open straight into a
	// linearized chain (superblock.go). The chain exits with the
	// architectural state of the equivalent per-uop execution; a
	// pdExit-class exit ends the batch below, anything else falls
	// through to the generic loop. sbEnterable may build (and in the
	// worst case roll the frame cache over), so ipd is re-read after.
	if !c.inDelay && c.PC&3 == 0 {
		if s := c.sbEnterable(c.PC); s != nil {
			n = c.execSB(s, max)
		}
		ipd = c.ipd
	}
	// The frame pointer and instruction page are loop invariants: the
	// only thing that can change them mid-batch is a store into the
	// executing frame, and dropFrame raises pdExit for exactly that.
	vpage := c.icache.vpage
	g := &c.GPR
	if ipd == nil || c.pdExit || c.Halted {
		// The superblock ended the batch (or rolled the frame cache
		// over while building); the per-uop loop must not run.
		goto done
	}
	for n < max {
		pc := c.PC
		if pc&EntryHiVPN != vpage || pc&3 != 0 {
			break
		}
		u := &ipd.ops[pc>>2&(pdFrameWords-1)]
		nextPC := pc + 4
		jumped := false
		if c.inDelay {
			nextPC = c.delayTarget
			c.inDelay = false
			c.execInSlot = true
			jumped = nextPC != pc+4
		}
		if c.CP0.Random <= TLBWired {
			c.CP0.Random = NTLB - 1
		} else {
			c.CP0.Random--
		}
		// The hot opcodes are dispatched inline (no observer can be
		// attached here, so the load/store cases skip the event hooks
		// and go straight for the cached page slice); everything else
		// funnels through execU, the single canonical implementation.
		// Each inline case mirrors its execU twin exactly, including
		// the trailing g[0] = 0 that non-store instructions perform.
		ok := true
		switch u.op {
		case pdADDU:
			g[u.rd] = g[u.rs] + g[u.rt]
			g[0] = 0
		case pdADDIU:
			g[u.rt] = g[u.rs] + u.imm
			g[0] = 0
		case pdLW:
			va := g[u.rs] + u.imm
			if va&EntryHiVPN == c.dcache.vpage && va&3 == 0 && c.dcache.ram != nil {
				r := c.dcache.ram
				off := va & (PageSize - 1)
				g[u.rt] = uint32(r[off])<<24 | uint32(r[off+1])<<16 | uint32(r[off+2])<<8 | uint32(r[off+3])
				g[0] = 0
			} else if v, lok := c.load(va, 4); lok {
				g[u.rt] = uint32(v)
				g[0] = 0
			} else {
				ok = false
			}
		case pdSW:
			va := g[u.rs] + u.imm
			if va&EntryHiVPN == c.wcache.vpage && va&3 == 0 && c.wcache.ram != nil {
				if fn := c.wcache.ppage >> PageShift; int(fn>>6) < len(c.pd.bitmap) && c.pd.bitmap[fn>>6]&(1<<(fn&63)) != 0 {
					c.dropFrame(fn)
				}
				r := c.wcache.ram
				off := va & (PageSize - 1)
				v := g[u.rt]
				r[off] = byte(v >> 24)
				r[off+1] = byte(v >> 16)
				r[off+2] = byte(v >> 8)
				r[off+3] = byte(v)
			} else {
				ok = c.store(va, 4, uint64(g[u.rt]))
			}
		case pdBEQ:
			if g[u.rs] == g[u.rt] {
				c.branch(pc + 4 + u.imm)
			} else {
				c.branch(pc + 8)
			}
			g[0] = 0
		case pdBNE:
			if g[u.rs] != g[u.rt] {
				c.branch(pc + 4 + u.imm)
			} else {
				c.branch(pc + 8)
			}
			g[0] = 0
		case pdSLL:
			g[u.rd] = g[u.rt] << u.sh
			g[0] = 0
		case pdSRL:
			g[u.rd] = g[u.rt] >> u.sh
			g[0] = 0
		case pdSRA:
			g[u.rd] = uint32(int32(g[u.rt]) >> u.sh)
			g[0] = 0
		case pdJR:
			c.branch(g[u.rs])
			g[0] = 0
		case pdJALR:
			t := g[u.rs]
			g[u.rd] = pc + 8
			c.branch(t)
			g[0] = 0
		case pdSUBU:
			g[u.rd] = g[u.rs] - g[u.rt]
			g[0] = 0
		case pdAND:
			g[u.rd] = g[u.rs] & g[u.rt]
			g[0] = 0
		case pdOR:
			g[u.rd] = g[u.rs] | g[u.rt]
			g[0] = 0
		case pdXOR:
			g[u.rd] = g[u.rs] ^ g[u.rt]
			g[0] = 0
		case pdSLT:
			if int32(g[u.rs]) < int32(g[u.rt]) {
				g[u.rd] = 1
			} else {
				g[u.rd] = 0
			}
			g[0] = 0
		case pdSLTU:
			if g[u.rs] < g[u.rt] {
				g[u.rd] = 1
			} else {
				g[u.rd] = 0
			}
			g[0] = 0
		case pdBLTZ:
			if int32(g[u.rs]) < 0 {
				c.branch(pc + 4 + u.imm)
			} else {
				c.branch(pc + 8)
			}
			g[0] = 0
		case pdBGEZ:
			if int32(g[u.rs]) >= 0 {
				c.branch(pc + 4 + u.imm)
			} else {
				c.branch(pc + 8)
			}
			g[0] = 0
		case pdJ:
			c.branch(pc&0xf0000000 | u.imm)
			g[0] = 0
		case pdJAL:
			g[31] = pc + 8
			c.branch(pc&0xf0000000 | u.imm)
			g[0] = 0
		case pdBLEZ:
			if int32(g[u.rs]) <= 0 {
				c.branch(pc + 4 + u.imm)
			} else {
				c.branch(pc + 8)
			}
			g[0] = 0
		case pdBGTZ:
			if int32(g[u.rs]) > 0 {
				c.branch(pc + 4 + u.imm)
			} else {
				c.branch(pc + 8)
			}
			g[0] = 0
		case pdSLTI:
			if int32(g[u.rs]) < int32(u.imm) {
				g[u.rt] = 1
			} else {
				g[u.rt] = 0
			}
			g[0] = 0
		case pdSLTIU:
			if g[u.rs] < u.imm {
				g[u.rt] = 1
			} else {
				g[u.rt] = 0
			}
			g[0] = 0
		case pdANDI:
			g[u.rt] = g[u.rs] & u.imm
			g[0] = 0
		case pdORI:
			g[u.rt] = g[u.rs] | u.imm
			g[0] = 0
		case pdXORI:
			g[u.rt] = g[u.rs] ^ u.imm
			g[0] = 0
		case pdLUI:
			g[u.rt] = u.imm
			g[0] = 0
		case pdLB:
			va := g[u.rs] + u.imm
			if va&EntryHiVPN == c.dcache.vpage && c.dcache.ram != nil {
				g[u.rt] = uint32(int32(int8(c.dcache.ram[va&(PageSize-1)])))
				g[0] = 0
			} else if v, lok := c.load(va, 1); lok {
				g[u.rt] = uint32(int32(int8(v)))
				g[0] = 0
			} else {
				ok = false
			}
		case pdLBU:
			va := g[u.rs] + u.imm
			if va&EntryHiVPN == c.dcache.vpage && c.dcache.ram != nil {
				g[u.rt] = uint32(c.dcache.ram[va&(PageSize-1)])
				g[0] = 0
			} else if v, lok := c.load(va, 1); lok {
				g[u.rt] = uint32(v)
				g[0] = 0
			} else {
				ok = false
			}
		case pdSB:
			va := g[u.rs] + u.imm
			if va&EntryHiVPN == c.wcache.vpage && c.wcache.ram != nil {
				if fn := c.wcache.ppage >> PageShift; int(fn>>6) < len(c.pd.bitmap) && c.pd.bitmap[fn>>6]&(1<<(fn&63)) != 0 {
					c.dropFrame(fn)
				}
				c.wcache.ram[va&(PageSize-1)] = byte(g[u.rt])
			} else {
				ok = c.store(va, 1, uint64(g[u.rt]&0xff))
			}
		default:
			ok = c.execU(u)
		}
		c.Stat.Instret++
		c.Stat.Classes[u.cls]++
		c.execInSlot = false
		n++
		if ok {
			c.PC = nextPC
		}
		if c.pdExit || c.Halted {
			break
		}
		if jumped && !c.inDelay {
			// A taken jump may land on a hot superblock head; chain
			// straight into it without surrendering the batch.
			if s := c.sbEnterable(c.PC); s != nil && n < max {
				n += c.execSB(s, max-n)
			}
			if c.pdExit || c.Halted || ipd != c.ipd {
				break
			}
		}
	}
done:
	c.pd.hits += n
	if c.prof.fn != nil && c.Stat.Instret >= c.prof.next {
		c.profSample()
	}
	return n
}

// stepSlow is the reference interpreter path: per-instruction fetch
// with byte reassembly and the full decode switch in exec. It serves
// fetches the predecode cache cannot (and the whole engine when
// SetPredecode(false) selects it as the oracle baseline).
func (c *CPU) stepSlow() bool {
	w, ok := c.fetchWord(c.PC)
	if !ok {
		return !c.Halted
	}
	nextPC := c.PC + 4
	if c.inDelay {
		nextPC = c.delayTarget
		c.inDelay = false
		c.execInSlot = true
	}
	if c.CP0.Random <= TLBWired {
		c.CP0.Random = NTLB - 1
	} else {
		c.CP0.Random--
	}
	if !c.exec(w) {
		// Exception raised (PC already set) or fault.
		c.Stat.Instret++ // the faulting instruction still issued
		c.Stat.Classes[opClass[w>>26]]++
		c.execInSlot = false
		return !c.Halted
	}
	c.Stat.Instret++
	c.Stat.Classes[opClass[w>>26]]++
	c.execInSlot = false
	c.PC = nextPC
	return !c.Halted
}

// syncObs re-derives the per-port observer flags from c.Obs.
func (c *CPU) syncObs() {
	has := c.Obs != nil
	c.obsAny = has
	c.obsFetch = has
	c.obsLoad = has
	c.obsStore = has
	c.obsExc = has
	c.obsFP = has
}

// opClass maps a primary opcode to its instruction class. Unused
// opcodes default to ClassALU (they raise reserved-instruction
// exceptions and barely retire).
var opClass = func() [64]Class {
	var t [64]Class
	for _, op := range []uint32{isa.OpRegImm, isa.OpJ, isa.OpJAL,
		isa.OpBEQ, isa.OpBNE, isa.OpBLEZ, isa.OpBGTZ} {
		t[op] = ClassBranch
	}
	for _, op := range []uint32{isa.OpLB, isa.OpLH, isa.OpLW,
		isa.OpLBU, isa.OpLHU, isa.OpLWC1} {
		t[op] = ClassLoad
	}
	for _, op := range []uint32{isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSWC1} {
		t[op] = ClassStore
	}
	t[isa.OpCOP0] = ClassSystem
	t[isa.OpCOP1] = ClassFP
	return t
}()

// Run executes up to max instructions; returns the number retired.
func (c *CPU) Run(max uint64) uint64 {
	start := c.Stat.Instret
	for c.Stat.Instret-start < max {
		if !c.Step() {
			break
		}
	}
	return c.Stat.Instret - start
}

// branch schedules a transfer after the delay slot.
func (c *CPU) branch(target uint32) {
	c.inDelay = true
	c.delayTarget = target
}

// exec executes the decoded instruction; returns false if an exception
// was raised (the exception, not nextPC, decides control flow).
func (c *CPU) exec(w uint32) bool {
	op := w >> 26
	rs := int(w >> 21 & 31)
	rt := int(w >> 16 & 31)
	g := &c.GPR
	imm := uint32(int32(int16(w)))
	switch op {
	case isa.OpSpecial:
		rd := int(w >> 11 & 31)
		sh := w >> 6 & 31
		switch w & 63 {
		case isa.FnSLL:
			g[rd] = g[rt] << sh
		case isa.FnSRL:
			g[rd] = g[rt] >> sh
		case isa.FnSRA:
			g[rd] = uint32(int32(g[rt]) >> sh)
		case isa.FnSLLV:
			g[rd] = g[rt] << (g[rs] & 31)
		case isa.FnSRLV:
			g[rd] = g[rt] >> (g[rs] & 31)
		case isa.FnSRAV:
			g[rd] = uint32(int32(g[rt]) >> (g[rs] & 31))
		case isa.FnJR:
			c.branch(g[rs])
		case isa.FnJALR:
			t := g[rs]
			g[rd] = c.PC + 8
			c.branch(t)
		case isa.FnSYSCALL:
			c.Stat.Syscalls++
			c.Exception(ExcSyscall, VecGeneral)
			return false
		case isa.FnBREAK:
			if c.HaltOnBreak {
				c.Halted = true
				return false
			}
			c.Exception(ExcBreak, VecGeneral)
			return false
		case isa.FnMFHI:
			g[rd] = c.HI
		case isa.FnMTHI:
			c.HI = g[rs]
		case isa.FnMFLO:
			g[rd] = c.LO
		case isa.FnMTLO:
			c.LO = g[rs]
		case isa.FnMULT:
			p := int64(int32(g[rs])) * int64(int32(g[rt]))
			c.LO = uint32(p)
			c.HI = uint32(p >> 32)
		case isa.FnMULTU:
			p := uint64(g[rs]) * uint64(g[rt])
			c.LO = uint32(p)
			c.HI = uint32(p >> 32)
		case isa.FnDIV:
			if g[rt] != 0 {
				c.LO = uint32(int32(g[rs]) / int32(g[rt]))
				c.HI = uint32(int32(g[rs]) % int32(g[rt]))
			}
		case isa.FnDIVU:
			if g[rt] != 0 {
				c.LO = g[rs] / g[rt]
				c.HI = g[rs] % g[rt]
			}
		case isa.FnADDU:
			g[rd] = g[rs] + g[rt]
		case isa.FnSUBU:
			g[rd] = g[rs] - g[rt]
		case isa.FnAND:
			g[rd] = g[rs] & g[rt]
		case isa.FnOR:
			g[rd] = g[rs] | g[rt]
		case isa.FnXOR:
			g[rd] = g[rs] ^ g[rt]
		case isa.FnNOR:
			g[rd] = ^(g[rs] | g[rt])
		case isa.FnSLT:
			if int32(g[rs]) < int32(g[rt]) {
				g[rd] = 1
			} else {
				g[rd] = 0
			}
		case isa.FnSLTU:
			if g[rs] < g[rt] {
				g[rd] = 1
			} else {
				g[rd] = 0
			}
		default:
			c.Exception(ExcReserved, VecGeneral)
			return false
		}
	case isa.OpRegImm:
		taken := false
		switch rt {
		case isa.RtBLTZ:
			taken = int32(g[rs]) < 0
		case isa.RtBGEZ:
			taken = int32(g[rs]) >= 0
		default:
			c.Exception(ExcReserved, VecGeneral)
			return false
		}
		if taken {
			c.branch(c.PC + 4 + imm<<2)
		} else {
			c.branch(c.PC + 8)
		}
	case isa.OpJ:
		c.branch(c.PC&0xf0000000 | w<<2&0x0ffffffc)
	case isa.OpJAL:
		g[31] = c.PC + 8
		c.branch(c.PC&0xf0000000 | w<<2&0x0ffffffc)
	case isa.OpBEQ:
		if g[rs] == g[rt] {
			c.branch(c.PC + 4 + imm<<2)
		} else {
			c.branch(c.PC + 8)
		}
	case isa.OpBNE:
		if g[rs] != g[rt] {
			c.branch(c.PC + 4 + imm<<2)
		} else {
			c.branch(c.PC + 8)
		}
	case isa.OpBLEZ:
		if int32(g[rs]) <= 0 {
			c.branch(c.PC + 4 + imm<<2)
		} else {
			c.branch(c.PC + 8)
		}
	case isa.OpBGTZ:
		if int32(g[rs]) > 0 {
			c.branch(c.PC + 4 + imm<<2)
		} else {
			c.branch(c.PC + 8)
		}
	case isa.OpADDIU:
		g[rt] = g[rs] + imm
	case isa.OpSLTI:
		if int32(g[rs]) < int32(imm) {
			g[rt] = 1
		} else {
			g[rt] = 0
		}
	case isa.OpSLTIU:
		if g[rs] < imm {
			g[rt] = 1
		} else {
			g[rt] = 0
		}
	case isa.OpANDI:
		g[rt] = g[rs] & uint32(uint16(w))
	case isa.OpORI:
		g[rt] = g[rs] | uint32(uint16(w))
	case isa.OpXORI:
		g[rt] = g[rs] ^ uint32(uint16(w))
	case isa.OpLUI:
		g[rt] = uint32(uint16(w)) << 16
	case isa.OpLB:
		v, ok := c.load(g[rs]+imm, 1)
		if !ok {
			return false
		}
		g[rt] = uint32(int32(int8(v)))
	case isa.OpLBU:
		v, ok := c.load(g[rs]+imm, 1)
		if !ok {
			return false
		}
		g[rt] = uint32(v)
	case isa.OpLH:
		v, ok := c.load(g[rs]+imm, 2)
		if !ok {
			return false
		}
		g[rt] = uint32(int32(int16(v)))
	case isa.OpLHU:
		v, ok := c.load(g[rs]+imm, 2)
		if !ok {
			return false
		}
		g[rt] = uint32(v)
	case isa.OpLW:
		v, ok := c.load(g[rs]+imm, 4)
		if !ok {
			return false
		}
		g[rt] = uint32(v)
	case isa.OpSB:
		return c.store(g[rs]+imm, 1, uint64(g[rt]&0xff))
	case isa.OpSH:
		return c.store(g[rs]+imm, 2, uint64(g[rt]&0xffff))
	case isa.OpSW:
		return c.store(g[rs]+imm, 4, uint64(g[rt]))
	case isa.OpLWC1:
		v, ok := c.load(g[rs]+imm, 8)
		if !ok {
			return false
		}
		c.FPR[rt] = math.Float64frombits(v)
	case isa.OpSWC1:
		return c.store(g[rs]+imm, 8, math.Float64bits(c.FPR[rt]))
	case isa.OpCOP0:
		if !c.KernelMode() {
			c.Exception(ExcReserved, VecGeneral)
			return false
		}
		return c.execCOP0(w, rs, rt)
	case isa.OpCOP1:
		return c.execCOP1(w, rs, rt)
	default:
		c.Exception(ExcReserved, VecGeneral)
		return false
	}
	g[0] = 0
	return true
}

func (c *CPU) execCOP0(w uint32, rs, rt int) bool {
	rd := int(w >> 11 & 31)
	switch uint32(rs) {
	case isa.Cop0MF:
		var v uint32
		switch rd {
		case isa.C0Index:
			v = c.CP0.Index
		case isa.C0Random:
			// Internal Random is the bare index; the register image
			// places it in bits 13:8 (see the CP0 layout comment).
			v = c.CP0.Random << RandomShift
		case isa.C0EntryLo:
			v = c.CP0.EntryLo
		case isa.C0Context:
			v = c.CP0.Context
		case isa.C0BadVAddr:
			v = c.CP0.BadVAddr
		case isa.C0Count:
			v = uint32(c.Stat.Instret)
		case isa.C0EntryHi:
			v = c.CP0.EntryHi
		case isa.C0Status:
			v = c.CP0.Status
		case isa.C0Cause:
			v = c.CP0.Cause | c.irqLines
		case isa.C0EPC:
			v = c.CP0.EPC
		}
		c.GPR[rt] = v
		c.GPR[0] = 0
	case isa.Cop0MT:
		v := c.GPR[rt]
		switch rd {
		case isa.C0Index:
			c.CP0.Index = v & (NTLB - 1)
		case isa.C0EntryLo:
			c.CP0.EntryLo = v
		case isa.C0Context:
			c.CP0.Context = v
		case isa.C0EntryHi:
			c.CP0.EntryHi = v
			c.invalidateCaches()
		case isa.C0Status:
			c.CP0.Status = v
		case isa.C0Cause:
			c.CP0.Cause = v
		case isa.C0EPC:
			c.CP0.EPC = v
		}
	case isa.Cop0CO:
		switch w & 63 {
		case isa.C0FnTLBWR:
			obs.Emit(evTLBWrite, uint64(c.CP0.Random), uint64(c.CP0.EntryHi))
			c.TLB[c.CP0.Random] = TLBEntry{Hi: c.CP0.EntryHi, Lo: c.CP0.EntryLo}
			c.invalidateCaches()
		case isa.C0FnTLBWI:
			obs.Emit(evTLBWrite, uint64(c.CP0.Index&(NTLB-1)), uint64(c.CP0.EntryHi))
			c.TLB[c.CP0.Index&(NTLB-1)] = TLBEntry{Hi: c.CP0.EntryHi, Lo: c.CP0.EntryLo}
			c.invalidateCaches()
		case isa.C0FnTLBP:
			if i := c.lookupTLBHi(); i >= 0 {
				c.CP0.Index = uint32(i)
			} else {
				c.CP0.Index = 1 << 31
			}
		case isa.C0FnTLBR:
			e := c.TLB[c.CP0.Index&(NTLB-1)]
			c.CP0.EntryHi = e.Hi
			c.CP0.EntryLo = e.Lo
		case isa.C0FnRFE:
			c.rfe()
		default:
			c.Exception(ExcReserved, VecGeneral)
			return false
		}
	default:
		c.Exception(ExcReserved, VecGeneral)
		return false
	}
	return true
}

// lookupTLBHi probes using EntryHi's VPN and ASID (for TLBP).
func (c *CPU) lookupTLBHi() int {
	vpn := c.CP0.EntryHi & EntryHiVPN
	asid := c.CP0.EntryHi & ASIDMask
	for i := 0; i < NTLB; i++ {
		e := &c.TLB[i]
		if e.Hi&EntryHiVPN == vpn && (e.Lo&EloG != 0 || e.Hi&ASIDMask == asid) {
			return i
		}
	}
	return -1
}

func (c *CPU) execCOP1(w uint32, rs, rt int) bool {
	switch uint32(rs) {
	case isa.Cop1MF:
		fs := int(w >> 11 & 31)
		c.GPR[rt] = uint32(int32(c.FPR[fs]))
		c.GPR[0] = 0
	case isa.Cop1MT:
		fs := int(w >> 11 & 31)
		c.FPR[fs] = float64(int32(c.GPR[rt]))
	case isa.Cop1BC:
		taken := c.FPCond == (rt == 1)
		if taken {
			c.branch(c.PC + 4 + uint32(int32(int16(w)))<<2)
		} else {
			c.branch(c.PC + 8)
		}
	case isa.Cop1Dbl:
		if c.obsFP {
			c.Obs.FPOp(isa.FPLatency(w))
		}
		fd := int(w >> 6 & 31)
		fs := int(w >> 11 & 31)
		ft := rt
		switch w & 63 {
		case isa.F1ADD:
			c.FPR[fd] = c.FPR[fs] + c.FPR[ft]
		case isa.F1SUB:
			c.FPR[fd] = c.FPR[fs] - c.FPR[ft]
		case isa.F1MUL:
			c.FPR[fd] = c.FPR[fs] * c.FPR[ft]
		case isa.F1DIV:
			c.FPR[fd] = c.FPR[fs] / c.FPR[ft]
		case isa.F1SQRT:
			c.FPR[fd] = math.Sqrt(c.FPR[fs])
		case isa.F1MOV:
			c.FPR[fd] = c.FPR[fs]
		case isa.F1NEG:
			c.FPR[fd] = -c.FPR[fs]
		case isa.F1CVTDW:
			c.FPR[fd] = c.FPR[fs]
		case isa.F1CVTWD:
			c.FPR[fd] = math.Trunc(c.FPR[fs])
		case isa.F1CLT:
			c.FPCond = c.FPR[fs] < c.FPR[ft]
		case isa.F1CLE:
			c.FPCond = c.FPR[fs] <= c.FPR[ft]
		case isa.F1CEQ:
			c.FPCond = c.FPR[fs] == c.FPR[ft]
		default:
			c.Exception(ExcReserved, VecGeneral)
			return false
		}
	default:
		c.Exception(ExcReserved, VecGeneral)
		return false
	}
	return true
}
