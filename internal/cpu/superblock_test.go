package cpu_test

// Invalidation regressions for the superblock tier. Each test attacks
// one soundness edge the chains add on top of the predecode cache:
// a guest store into a frame another frame's superblock chains into,
// a DMA transfer landing under a resident chain, and a TLB rewrite
// between a mapped superblock's build and its next entry. All three
// run with the build threshold forced to 1 so the first re-entry
// builds, and assert both the architectural outcome and the engine
// counters that prove the guarded path actually ran.

import (
	"encoding/binary"
	"testing"

	"systrace/internal/cpu"
	"systrace/internal/dev"
	"systrace/internal/isa"
	"systrace/internal/machine"
)

// crossFrameLoop assembles the two-page loop shared by the cross-frame
// tests: the loop head sits at the end of one text frame and falls
// through into the next, so the superblock built at the head chains
// across the frame boundary. The instruction at 0x80002000 (ORI t3,5)
// is the patch target; iterations accumulate t3 into GPR 12.
func crossFrameLoop(m *machine.Machine, patch bool) {
	T3, T4, T6, T7 := isa.RegT3, 12, 14, 15
	K0, K1, T9 := isa.RegK0, isa.RegK1, isa.RegT9
	put(m, 0x80001ff8,
		isa.ADDIU(T6, T6, 1), // loop head: iteration counter
		isa.NOP,              // last word of the first frame
	)
	if patch {
		put(m, 0x80002000,
			isa.ORI(T3, 0, 5), // patch target (second frame)
			isa.ADDU(T4, T4, T3),
			isa.BNE(T6, T9, 2), // skip the patch except on iteration 4
			isa.NOP,
			isa.SW(K1, K0, 0), // guest store into the chained-in frame
			isa.SLTI(T7, T6, 8),
			isa.BNE(T7, 0, -9), // back to the loop head
			isa.NOP,
			isa.BREAK(0),
		)
		m.CPU.GPR[K0] = 0x80002000
		m.CPU.GPR[K1] = uint32(isa.ORI(T3, 0, 9))
		m.CPU.GPR[T9] = 4
	} else {
		put(m, 0x80002000,
			isa.ORI(T3, 0, 5),
			isa.ADDU(T4, T4, T3),
			isa.SLTI(T7, T6, 8),
			isa.BNE(T7, 0, -6), // back to the loop head
			isa.NOP,
			isa.BREAK(0),
		)
	}
	m.CPU.PC = 0x80001ff8
}

// TestSuperblockCrossFrameInvalidation: a guest store rewrites an
// instruction in the second frame of a superblock whose entry lies in
// the first. The store lands mid-dispatch (the patch path runs inside
// the chain), so the dependent-superblock invalidation must both drop
// the chain and stop the current dispatch before the stale tail
// retires. Iterations 1-4 must see the old instruction (accumulating
// 5), iterations 5-8 the new one (9). The reference engine runs the
// same program for a full-state comparison.
func TestSuperblockCrossFrameInvalidation(t *testing.T) {
	fast := newM()
	fast.CPU.SetSuperblockThreshold(1)
	crossFrameLoop(fast, true)
	if err := fast.Run(1000); err != nil {
		t.Fatal(err)
	}
	ref := newM()
	ref.CPU.SetPredecode(false)
	crossFrameLoop(ref, true)
	if err := ref.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := fast.CPU.GPR[12]; got != 4*5+4*9 {
		t.Errorf("accumulator = %d, want %d (stale chained frame executed)", got, 4*5+4*9)
	}
	if d := diffState(ref.CPU, fast.CPU); d != "" {
		t.Errorf("engines diverge: %s", d)
	}
	st := fast.CPU.SuperblockStats()
	if st.Built == 0 {
		t.Error("no superblock built: the cross-frame chain was not exercised")
	}
	if st.Invalidated == 0 {
		t.Error("guest store into a chained frame invalidated no superblock")
	}
}

// TestSuperblockDMAInvalidation: disk DMA copies replacement code over
// the second frame of a resident cross-frame superblock through the
// raw Bytes() slice (bypassing the CPU's write port). The DMAWrote
// notification must drop the dependent chain; re-running the loop must
// execute the DMA'd code, not the stale linearized steps.
func TestSuperblockDMAInvalidation(t *testing.T) {
	T3, T6, T7 := isa.RegT3, 14, 15
	img := make([]byte, dev.SectorSize)
	repl := []isa.Word{
		isa.ORI(T3, 0, 9), // replaces the ORI t3,5 at 0x80002000
		isa.ADDU(12, 12, T3),
		isa.SLTI(T7, T6, 8),
		isa.BNE(T7, 0, -6),
		isa.NOP,
		isa.BREAK(0),
	}
	for i, w := range repl {
		binary.BigEndian.PutUint32(img[i*4:], uint32(w))
	}
	m := machine.New(1<<20, img)
	m.CPU.HaltOnBreak = true
	m.CPU.SetSuperblockThreshold(1)
	crossFrameLoop(m, false)
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := m.CPU.GPR[12]; got != 8*5 {
		t.Fatalf("first run: accumulator = %d, want %d", got, 8*5)
	}
	if m.CPU.SuperblockStats().Built == 0 {
		t.Fatal("no superblock built over the two-frame loop")
	}

	// DMA one sector over the second frame while the chain is resident.
	now := m.Cycles()
	m.Disk.Write(now, dev.DiskSector, 0)
	m.Disk.Write(now, dev.DiskAddr, 0x2000)
	m.Disk.Write(now, dev.DiskNSect, 1)
	m.Disk.Write(now, dev.DiskCmd, 1)
	m.Disk.Advance(now + 100_000_000)
	if m.Disk.Reads != 1 {
		t.Fatalf("disk read did not complete (reads=%d)", m.Disk.Reads)
	}
	m.CPU.Halted = false
	m.CPU.GPR[12], m.CPU.GPR[T6] = 0, 0
	m.CPU.PC = 0x80001ff8
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := m.CPU.GPR[12]; got != 8*9 {
		t.Errorf("after DMA: accumulator = %d, want %d (stale superblock executed)", got, 8*9)
	}
	if inv := m.CPU.SuperblockStats().Invalidated; inv == 0 {
		t.Error("DMA under a resident chain invalidated no superblock")
	}
}

// TestSuperblockTLBGenerationGuard: a superblock built over mapped
// text caches its va→pa translations in its page guards. The guest
// then rewrites the mapping with TLBWI (bumping the translation
// generation) so the same virtual entry names different physical
// code. The entry guard must refuse the stale chain — revalidation
// sees the PFN mismatch — and the fetch path must translate afresh.
// Calls 1-4 run the routine at the old frame (adding 5), calls 5-8
// the new frame (adding 9).
func TestSuperblockTLBGenerationGuard(t *testing.T) {
	T3, T4, T5, T6, T7, T8 := isa.RegT3, 12, 13, 14, 15, 24
	K0, K1, T9, RA := isa.RegK0, isa.RegK1, isa.RegT9, isa.RegRA
	m := newM()
	m.CPU.SetSuperblockThreshold(1)
	routine := func(pa uint32, v uint16) {
		m.RAM.WriteWord(pa, uint32(isa.ORI(T3, 0, v)))
		m.RAM.WriteWord(pa+4, uint32(isa.ADDU(T4, T4, T3)))
		m.RAM.WriteWord(pa+8, uint32(isa.JR(RA)))
		m.RAM.WriteWord(pa+12, uint32(isa.NOP))
	}
	routine(0x5000, 5)
	routine(0x6000, 9)
	m.CPU.TLB[8] = cpu.TLBEntry{Hi: 0x1000, Lo: 0x5000 | eloVD}
	put(m, 0x80001000,
		isa.ADDIU(T6, T6, 1), // loop head: call counter
		isa.JALR(RA, T8),     // into the mapped routine (J cannot leave kseg0's 256MB region)
		isa.NOP,              // return lands right after the slot
		isa.BNE(T6, T9, 5),   // skip the remap except on call 4
		isa.NOP,
		isa.MTC0(K0, isa.C0EntryHi),
		isa.MTC0(K1, isa.C0EntryLo),
		isa.MTC0(T5, isa.C0Index),
		isa.TLBWI(), // va 0x1000 now names the 0x6000 frame
		isa.SLTI(T7, T6, 8),
		isa.BNE(T7, 0, -11), // back to the loop head
		isa.NOP,
		isa.BREAK(0),
	)
	m.CPU.GPR[T8] = 0x1000
	m.CPU.GPR[K0] = 0x1000
	m.CPU.GPR[K1] = 0x6000 | eloVD
	m.CPU.GPR[T5] = 8
	m.CPU.GPR[T9] = 4
	m.CPU.PC = 0x80001000
	if err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if got := m.CPU.GPR[T4]; got != 4*5+4*9 {
		t.Errorf("accumulator = %d, want %d (stale mapped superblock executed)", got, 4*5+4*9)
	}
	st := m.CPU.SuperblockStats()
	if st.Built == 0 {
		t.Error("no superblock built over the mapped routine")
	}
	if st.EntryRejects == 0 {
		t.Error("remapped entry was never rejected: the generation guard did not fire")
	}
}
