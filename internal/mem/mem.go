// Package mem provides the physical memory of the simulated machine.
// Traces are collected "on a machine with a large physical memory,
// such that pageouts do not occur" (paper §4.1): the machines built
// here are configured the same way, so the kernels never page.
package mem

import (
	"encoding/binary"
	"fmt"
)

// RAM is byte-addressable big-endian physical memory.
type RAM struct {
	b    []byte
	hook func(p, n uint32)
}

// SetWriteHook installs fn, called after every successful mutation
// through the RAM API (Write, WriteBytes, WriteWord) with the physical
// range written. The machine registers the CPU's predecode-frame
// invalidation here so host-side loaders and bus-path device stores
// can never leave stale decoded text behind. Raw Bytes() mutations
// bypass the hook; the writers that use them (disk DMA) notify the
// CPU through dev.WriteNotifier instead. A nil fn removes the hook.
func (r *RAM) SetWriteHook(fn func(p, n uint32)) { r.hook = fn }

// NewRAM allocates size bytes of zeroed memory (rounded up to 4 KB).
func NewRAM(size uint32) *RAM {
	size = (size + 4095) &^ 4095
	return &RAM{b: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (r *RAM) Size() uint32 { return uint32(len(r.b)) }

// Bytes exposes the backing store (host-side loaders and the analysis
// program's buffer extraction use it; guest access goes through the
// bus).
func (r *RAM) Bytes() []byte { return r.b }

// Page returns the 4 KB frame containing p, or nil if out of range.
func (r *RAM) Page(p uint32) []byte {
	base := p &^ 4095
	if uint64(base)+4096 > uint64(len(r.b)) {
		return nil
	}
	return r.b[base : base+4096]
}

// Read returns the value of the size-byte field at p. The bounds check
// is done in 64 bits: p near the top of the address space must fail
// cleanly, not wrap.
func (r *RAM) Read(p uint32, size int) (uint32, bool) {
	if size < 0 || uint64(p)+uint64(size) > uint64(len(r.b)) {
		return 0, false
	}
	switch size {
	case 1:
		return uint32(r.b[p]), true
	case 2:
		return uint32(binary.BigEndian.Uint16(r.b[p:])), true
	case 4:
		return binary.BigEndian.Uint32(r.b[p:]), true
	}
	return 0, false
}

// Write stores v into the size-byte field at p.
func (r *RAM) Write(p uint32, size int, v uint32) bool {
	if size < 0 || uint64(p)+uint64(size) > uint64(len(r.b)) {
		return false
	}
	switch size {
	case 1:
		r.b[p] = byte(v)
	case 2:
		binary.BigEndian.PutUint16(r.b[p:], uint16(v))
	case 4:
		binary.BigEndian.PutUint32(r.b[p:], v)
	default:
		return false
	}
	if r.hook != nil {
		r.hook(p, uint32(size))
	}
	return true
}

// WriteBytes copies raw bytes into physical memory (host-side loader).
func (r *RAM) WriteBytes(p uint32, data []byte) error {
	if int(p)+len(data) > len(r.b) {
		return fmt.Errorf("mem: image of %d bytes at 0x%x exceeds %d-byte RAM",
			len(data), p, len(r.b))
	}
	copy(r.b[p:], data)
	if r.hook != nil && len(data) > 0 {
		r.hook(p, uint32(len(data)))
	}
	return nil
}

// ReadWord is a convenience 4-byte read for host-side consumers.
func (r *RAM) ReadWord(p uint32) uint32 {
	v, _ := r.Read(p, 4)
	return v
}

// WriteWord is a convenience 4-byte write for host-side producers.
func (r *RAM) WriteWord(p uint32, v uint32) { r.Write(p, 4, v) }
