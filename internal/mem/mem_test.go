package mem_test

import (
	"testing"
	"testing/quick"

	"systrace/internal/mem"
)

func TestRAMRounding(t *testing.T) {
	r := mem.NewRAM(1)
	if r.Size() != 4096 {
		t.Errorf("size %d want one page", r.Size())
	}
	if got := mem.NewRAM(8192).Size(); got != 8192 {
		t.Errorf("aligned size changed: %d", got)
	}
}

func TestRAMEndianAndBounds(t *testing.T) {
	r := mem.NewRAM(4096)
	r.WriteWord(0x100, 0x01020304)
	// Big-endian byte order.
	for i, want := range []uint32{1, 2, 3, 4} {
		if v, ok := r.Read(0x100+uint32(i), 1); !ok || v != want {
			t.Errorf("byte %d = %d want %d", i, v, want)
		}
	}
	if v, ok := r.Read(0x102, 2); !ok || v != 0x0304 {
		t.Errorf("half = 0x%x", v)
	}
	// Out of range reads and writes fail rather than wrap.
	if _, ok := r.Read(4094, 4); ok {
		t.Error("straddling read succeeded")
	}
	if r.Write(4096, 1, 0) {
		t.Error("out-of-range write succeeded")
	}
	if _, ok := r.Read(0, 3); ok {
		t.Error("3-byte access accepted")
	}
	if err := r.WriteBytes(4090, make([]byte, 10)); err == nil {
		t.Error("overflowing image accepted")
	}
	if p := r.Page(8192); p != nil {
		t.Error("out-of-range page returned")
	}
	if p := r.Page(0x123); p == nil || len(p) != 4096 {
		t.Error("page lookup wrong")
	}
}

// Property: a write followed by a read of the same size and address
// returns the value truncated to the field width, and never disturbs
// bytes outside the field.
func TestQuickRAMWriteRead(t *testing.T) {
	r := mem.NewRAM(64 << 10)
	prop := func(p uint32, v uint32, szSel uint8) bool {
		size := []int{1, 2, 4}[szSel%3]
		p %= (64 << 10) - 8
		p &^= uint32(size - 1) // aligned
		guardLo, _ := r.Read(p-4, 4)
		if p < 4 {
			guardLo = 0
		}
		if !r.Write(p, size, v) {
			return false
		}
		got, ok := r.Read(p, size)
		if !ok {
			return false
		}
		mask := uint32(1)<<(8*size) - 1
		if size == 4 {
			mask = 0xffffffff
		}
		if got != v&mask {
			return false
		}
		if p >= 4 {
			if lo, _ := r.Read(p-4, 4); lo != guardLo {
				return false // neighbor disturbed
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsCheckNoWraparound(t *testing.T) {
	r := mem.NewRAM(64 * 1024)
	// Addresses near the top of the 32-bit space must fail cleanly: a
	// 32-bit p+size bounds check wraps and then panics slicing.
	for _, p := range []uint32{^uint32(0), ^uint32(0) - 3, 0xfffff000} {
		if _, ok := r.Read(p, 4); ok {
			t.Errorf("Read(%#x, 4) succeeded beyond RAM", p)
		}
		if r.Write(p, 4, 1) {
			t.Errorf("Write(%#x, 4) succeeded beyond RAM", p)
		}
		if r.Page(p) != nil {
			t.Errorf("Page(%#x) returned a frame beyond RAM", p)
		}
	}
}

func TestWriteHook(t *testing.T) {
	r := mem.NewRAM(8192)
	type call struct{ p, n uint32 }
	var calls []call
	r.SetWriteHook(func(p, n uint32) { calls = append(calls, call{p, n}) })

	r.Write(0x10, 4, 0xdeadbeef)
	r.WriteWord(0x20, 1)
	r.Write(0x30, 2, 7)
	r.WriteBytes(0x1000, []byte{1, 2, 3})
	r.WriteBytes(0x40, nil)         // empty: no call
	r.Write(0x5000, 4, 1)           // out of range: no call
	r.WriteBytes(0x5000, []byte{1}) // out of range: no call
	r.Write(0x50, 3, 1)             // unsupported size: no call

	want := []call{{0x10, 4}, {0x20, 4}, {0x30, 2}, {0x1000, 3}}
	if len(calls) != len(want) {
		t.Fatalf("hook calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Errorf("call %d = %v, want %v", i, calls[i], want[i])
		}
	}

	r.SetWriteHook(nil)
	r.Write(0x10, 4, 1)
	if len(calls) != len(want) {
		t.Error("hook fired after removal")
	}
}
