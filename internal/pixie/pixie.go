// Package pixie implements the contrast tool the paper measures epoxie
// against: an *executable-level* rewriter in the style of the MIPS
// pixie tool [Smith 91]. Because it runs after linking, it has no
// relocation information, so it "does some of this address correction
// statically ... but it must do part of it dynamically, by including a
// complete address translation table in the instrumented executable
// and doing lookups in this table during execution" (§3.2): direct
// calls plant *original* return addresses, every indirect jump
// translates through the table, and the inline trace-collection
// sequences are the bulky early-tool style — which is why pixie-style
// instrumentation "expands the text by a factor of 4-6" against
// epoxie's 1.9-2.3.
//
// The package also provides the basic-block counting mode the paper
// uses for Table 2's arithmetic-stall term ("Pixie was used to
// estimate arithmetic stalls, as the tracing system does not measure
// these events", §5.1).
package pixie

import (
	"encoding/binary"
	"fmt"

	"systrace/internal/epoxie"
	"systrace/internal/isa"
	"systrace/internal/obj"
	"systrace/internal/trace"
)

// RAM is the slice of physical memory the counter reader needs.
type RAM interface {
	ReadWord(p uint32) uint32
}

// ReadCounts extracts the per-block execution counters after a
// ModeCount run. The machine's RAM is indexed physically; count-mode
// images run bare (kseg0), so the counter VA maps directly.
func ReadCounts(ram RAM, res *Result) []uint32 {
	out := make([]uint32, res.NBlocks)
	for i := range out {
		out[i] = ram.ReadWord(res.CountsVA + uint32(i)*4 - 0x80000000)
	}
	return out
}

// Mode selects what the rewriter inserts.
type Mode int

const (
	// ModeTrace inserts address-tracing code.
	ModeTrace Mode = iota
	// ModeCount inserts per-basic-block execution counters.
	ModeCount
)

const (
	xr1 = isa.XReg1
	xr3 = isa.XReg3
	at  = isa.RegAT
)

// Result is a pixie-instrumented executable.
type Result struct {
	Exe *obj.Executable
	// TableVA is the address of the runtime translation table.
	TableVA uint32
	// CountsVA is the address of the counter array (ModeCount);
	// counter i belongs to block i of the original executable.
	CountsVA uint32
	NBlocks  int
}

type rw struct {
	in           *obj.Executable
	mode         Mode
	out          []isa.Word
	instrNew     map[uint32]uint32 // original VA -> new text byte offset
	leader       map[uint32]uint32 // original block VA -> new byte offset
	pendingJumps []pendingJump
	bookVA       uint32
	countsVA     uint32
	tableVA      uint32
	err          error
}

func (r *rw) fault(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("pixie %s: %s", r.in.Name, fmt.Sprintf(format, args...))
	}
}

// Rewrite instruments a linked executable.
func Rewrite(e *obj.Executable, mode Mode) (*Result, error) {
	return RewriteWithBook(e, mode, 0)
}

// RewriteWithBook is Rewrite with a startup stub prepended that points
// xreg3 at the bookkeeping area bookVA and initializes the buffer
// bounds — pixie's own initialization code, needed when the input
// binary was not built for tracing. bookVA 0 omits the stub (the
// caller's startup code owns the bookkeeping).
func RewriteWithBook(e *obj.Executable, mode Mode, bookVA uint32) (*Result, error) {
	if e.Instr != nil {
		return nil, fmt.Errorf("pixie: %s is already instrumented", e.Name)
	}
	r := &rw{
		in:       e,
		mode:     mode,
		bookVA:   bookVA,
		instrNew: make(map[uint32]uint32, len(e.Text)),
		leader:   make(map[uint32]uint32, len(e.Blocks)),
	}

	// Data layout: original data, zero fill through the old BSS, then
	// the counter array, then the translation table. Data addresses
	// are unchanged; only the image grows past the old program break.
	dataLen := e.BSSEnd() - e.DataBase
	dataLen = (dataLen + 7) &^ 7
	r.countsVA = e.DataBase + dataLen
	nctr := uint32(0)
	if mode == ModeCount {
		nctr = uint32(len(e.Blocks)) * 4
	}
	r.tableVA = r.countsVA + nctr

	// Optional startup stub: establish the bookkeeping register and
	// buffer bounds, then jump to the original entry.
	var stubEntry uint32
	if bookVA != 0 {
		stubEntry = uint32(len(r.out)) * 4
		r.li32(xr3, bookVA)
		r.li32(at, bookVA+trace.BookSize)
		r.emit(isa.SW(at, xr3, trace.BookBufPtr))
		r.li32(at, bookVA+trace.BookSize+trace.UserBufBytes)
		r.emit(isa.SW(at, xr3, trace.BookBufEnd))
		r.pendingJumps = append(r.pendingJumps, pendingJump{
			off:    r.emit(isa.J(0)),
			target: e.Entry,
		})
		r.emit(isa.NOP)
	}

	for bi := range e.Blocks {
		r.block(&e.Blocks[bi])
		if r.err != nil {
			return nil, r.err
		}
	}
	r.fixBranches()
	if r.err != nil {
		return nil, r.err
	}

	// Translation table: one word per original text word.
	table := make([]byte, len(e.Text)*4)
	for i := 0; i < len(e.Text); i++ {
		va := e.TextBase + uint32(i)*4
		var nw uint32
		if off, ok := r.leader[va]; ok {
			nw = e.TextBase + off
		} else if off, ok := r.instrNew[va]; ok {
			nw = e.TextBase + off
		}
		binary.BigEndian.PutUint32(table[i*4:], nw)
	}

	data := make([]byte, dataLen+nctr)
	copy(data, e.Data)
	data = append(data, table...)

	entry := e.TextBase + r.mapVA(e.Entry)
	if bookVA != 0 {
		entry = e.TextBase + stubEntry
	}
	ne := &obj.Executable{
		Name:     e.Name + ".pixie",
		Entry:    entry,
		TextBase: e.TextBase,
		Text:     r.out,
		DataBase: e.DataBase,
		Data:     data,
		BSSBase:  e.DataBase + uint32(len(data)),
		BSSSize:  0,
		Traced:   mode == ModeTrace || bookVA != 0,
	}
	for _, s := range e.Syms {
		ns := s
		if s.Section == obj.SecText {
			ns.Off = e.TextBase + r.mapVA(s.Off)
		}
		ne.Syms = append(ne.Syms, ns)
	}
	if mode == ModeTrace {
		ii := &obj.InstrInfo{
			Tool:         "pixie",
			OrigTextSize: uint32(len(e.Text)) * 4,
			TextSize:     uint32(len(r.out)) * 4,
		}
		for bi := range e.Blocks {
			b := &e.Blocks[bi]
			if b.Flags&(obj.BBNoInstrument|obj.BBHandTraced) != 0 {
				continue
			}
			// pixie records the *original* block address directly.
			ii.Blocks = append(ii.Blocks, obj.InstrBlock{
				RecordAddr: b.Addr,
				OrigAddr:   b.Addr,
				NInstr:     b.NInstr,
				Flags:      b.Flags,
				Mem:        b.Mem,
			})
		}
		ne.Instr = ii
	}
	// The rewritten image has no meaningful block table; leave it
	// empty (nothing instruments a pixie output further).
	return &Result{Exe: ne, TableVA: r.tableVA, CountsVA: r.countsVA, NBlocks: len(e.Blocks)}, nil
}

func (r *rw) mapVA(va uint32) uint32 {
	rel := va
	if off, ok := r.leader[rel]; ok {
		return off
	}
	if off, ok := r.instrNew[rel]; ok {
		return off
	}
	return 0
}

func (r *rw) emit(w isa.Word) uint32 {
	off := uint32(len(r.out)) * 4
	r.out = append(r.out, w)
	return off
}

// li32 emits a lui/ori pair loading v into reg.
func (r *rw) li32(reg int, v uint32) {
	r.emit(isa.LUI(reg, uint16(v>>16)))
	r.emit(isa.ORI(reg, reg, uint16(v)))
}

func (r *rw) block(b *obj.ExeBlock) {
	newStart := uint32(len(r.out)) * 4
	r.leader[b.Addr] = newStart
	instrument := b.Flags&(obj.BBNoInstrument|obj.BBHandTraced) == 0

	if instrument {
		switch r.mode {
		case ModeTrace:
			// Inline block record: bounds check, then store the
			// original block address.
			r.emit(isa.LW(xr1, xr3, trace.BookBufPtr))
			r.emit(isa.LW(at, xr3, trace.BookBufEnd))
			r.emit(isa.SLTU(at, xr1, at))
			r.emit(isa.BEQ(at, isa.RegZero, 6)) // skip the record when full
			r.emit(isa.NOP)
			r.li32(at, b.Addr)
			r.emit(isa.SW(at, xr1, 0))
			r.emit(isa.ADDIU(xr1, xr1, 4))
			r.emit(isa.SW(xr1, xr3, trace.BookBufPtr))
		case ModeCount:
			bi := r.blockIndex(b)
			r.li32(at, r.countsVA+uint32(bi)*4)
			r.emit(isa.LW(xr1, at, 0))
			r.emit(isa.ADDIU(xr1, xr1, 1))
			r.emit(isa.SW(xr1, at, 0))
		}
	}

	n := int(b.NInstr)
	words := r.in.Text[(b.Addr-r.in.TextBase)/4:]
	words = words[:n]
	bodyEnd := n
	hasPair := n >= 2 && isa.HasDelaySlot(words[n-2])
	if hasPair {
		bodyEnd = n - 2
	}
	for k := 0; k < bodyEnd; k++ {
		r.instruction(b.Addr+uint32(k)*4, words[k], instrument)
	}
	if hasPair {
		r.terminator(b.Addr+uint32(bodyEnd)*4, words[n-2], words[n-1], instrument)
	}
}

func (r *rw) blockIndex(b *obj.ExeBlock) int {
	for i := range r.in.Blocks {
		if &r.in.Blocks[i] == b {
			return i
		}
	}
	return 0
}

func (r *rw) steal(w isa.Word, instrument bool) (pre []isa.Word, main isa.Word, post []isa.Word) {
	if !instrument {
		return nil, w, nil
	}
	pre, main, post, err := epoxie.StealRewrite(w)
	if err != nil {
		r.fault("%v", err)
	}
	return pre, main, post
}

func (r *rw) instruction(va uint32, w isa.Word, instrument bool) {
	pre, main, post := r.steal(w, instrument)
	for _, p := range pre {
		r.emit(p)
	}
	if instrument && r.mode == ModeTrace && isa.IsMem(main) {
		r.instrNew[va] = r.memRef(main)
	} else {
		r.instrNew[va] = r.emit(main)
	}
	for _, p := range post {
		r.emit(p)
	}
}

// memRef emits the inline trace store (eleven instructions) followed
// by the original memory instruction, returning the latter's offset.
func (r *rw) memRef(w isa.Word) uint32 {
	i := isa.Decode(w)
	r.emit(isa.SW(at, xr3, trace.BookTmp)) // preserve at (may be the base)
	r.emit(isa.ADDIU(at, i.Rs, i.Imm))     // effective address
	r.emit(isa.LW(xr1, xr3, trace.BookBufPtr))
	r.emit(isa.SW(at, xr3, trace.BookImm)) // park EA across the check
	r.emit(isa.LW(at, xr3, trace.BookBufEnd))
	r.emit(isa.SLTU(at, xr1, at))
	r.emit(isa.BEQ(at, isa.RegZero, 4)) // full: skip the store
	r.emit(isa.LW(at, xr3, trace.BookImm))
	r.emit(isa.SW(at, xr1, 0))
	r.emit(isa.ADDIU(xr1, xr1, 4))
	r.emit(isa.SW(xr1, xr3, trace.BookBufPtr))
	r.emit(isa.LW(at, xr3, trace.BookTmp))
	return r.emit(w)
}

// translate emits the table lookup turning an original code address in
// src into the rewritten address, left in at. Delta addressing folds
// the table base and text base into one constant. When the source is
// `at` itself (a steal-rewritten jump register), xreg1 carries the
// delta instead.
func (r *rw) translate(src int) {
	delta := r.tableVA - r.in.TextBase
	if src == at {
		r.li32(xr1, delta)
		r.emit(isa.ADDU(at, xr1, at))
		r.emit(isa.LW(at, at, 0))
		return
	}
	r.li32(at, delta)
	r.emit(isa.ADDU(at, at, src))
	r.emit(isa.LW(at, at, 0))
}

// terminator rewrites a control transfer and its delay slot. Address
// correction applies to *all* blocks; tracing only to instrumented
// ones.
func (r *rw) terminator(va uint32, term, slot isa.Word, instrument bool) {
	tpre, tmain, tpost := r.steal(term, instrument)
	if len(tpost) != 0 {
		r.fault("terminator at 0x%x writes a stolen register", va)
		return
	}
	spre, smain, spost := r.steal(slot, instrument)

	emitSlot := func() {
		// The (possibly rewritten) delay slot, hoisted above the jump
		// when it expands to more than one instruction.
		if instrument && r.mode == ModeTrace && isa.IsMem(smain) {
			if !safeToHoist(tmain, smain) {
				r.fault("memory instruction in delay slot at 0x%x cannot be hoisted", va+4)
				return
			}
			for _, p := range spre {
				r.emit(p)
			}
			r.instrNew[va+4] = r.memRef(smain)
			for _, p := range spost {
				r.emit(p)
			}
			return
		}
		if len(spre) != 0 || len(spost) != 0 {
			if !safeToHoist(tmain, smain) || len(spost) != 0 {
				r.fault("delay slot at 0x%x cannot be hoisted", va+4)
				return
			}
			for _, p := range spre {
				r.emit(p)
			}
			r.instrNew[va+4] = r.emit(smain)
			return
		}
		r.instrNew[va+4] = 0xffffffff // placed below, in the jump's slot
	}

	i := isa.Decode(tmain)
	switch {
	case tmain>>26 == isa.OpJAL:
		// jal X -> plant the *original* return address, jump to the
		// corrected target.
		origRet := va + 8
		target := va&0xf0000000 | i.Target<<2
		emitSlot()
		r.li32(isa.RegRA, origRet)
		r.jumpStatic(va, target)
	case tmain>>26 == isa.OpJ:
		target := va&0xf0000000 | i.Target<<2
		emitSlot()
		r.jumpStatic(va, target)
	case tmain>>26 == isa.OpSpecial && i.Funct == isa.FnJALR:
		emitSlot()
		for _, p := range tpre {
			r.emit(p)
		}
		r.translate(i.Rs)
		r.li32(i.Rd, va+8)
		r.instrNew[va] = r.emit(isa.JR(at))
		r.emit(isa.NOP)
	case tmain>>26 == isa.OpSpecial && i.Funct == isa.FnJR:
		emitSlot()
		for _, p := range tpre {
			r.emit(p)
		}
		r.translate(i.Rs)
		r.instrNew[va] = r.emit(isa.JR(at))
		r.emit(isa.NOP)
	default:
		// Conditional branch: fixed up after layout.
		emitSlot()
		for _, p := range tpre {
			r.emit(p)
		}
		r.instrNew[va] = r.emit(tmain)
		if r.instrNew[va+4] == 0xffffffff {
			r.instrNew[va+4] = r.emit(smain)
		} else {
			r.emit(isa.NOP)
		}
		return
	}
	if r.instrNew[va+4] == 0xffffffff {
		// Simple slot: place it in the rewritten jump's own delay
		// slot. The jump was emitted with a trailing NOP; put the
		// instruction there instead.
		r.out[len(r.out)-1] = smain
		r.instrNew[va+4] = uint32(len(r.out)-1) * 4
	}
}

// jumpStatic emits a statically corrected jump to the original target
// address (resolved after layout for forward targets).
func (r *rw) jumpStatic(va, origTarget uint32) {
	off := r.emit(isa.J(0))
	r.emit(isa.NOP)
	r.pendingJumps = append(r.pendingJumps, pendingJump{off: off, target: origTarget})
	r.instrNew[va] = off
}

type pendingJump struct {
	off    uint32 // new text offset of the j instruction
	target uint32 // original VA
}

func safeToHoist(term, slot isa.Word) bool { return isa.SafeToHoist(term, slot) }

func (r *rw) fixBranches() {
	// Conditional branches.
	for va, newOff := range r.instrNew {
		w := r.out[newOff/4]
		if !isa.IsBranch(w) {
			continue
		}
		imm := int32(int16(w))
		oldTarget := uint32(int64(va) + 4 + int64(imm)*4)
		nt, ok := r.leader[oldTarget]
		if !ok {
			nt, ok = r.instrNew[oldTarget]
		}
		if !ok {
			r.fault("branch at 0x%x targets unmapped 0x%x", va, oldTarget)
			return
		}
		diff := (int64(nt) - int64(newOff) - 4) / 4
		if diff > 32767 || diff < -32768 {
			r.fault("branch at 0x%x out of range after expansion", va)
			return
		}
		r.out[newOff/4] = w&0xffff0000 | uint32(uint16(int16(diff)))
	}
	// Static jumps.
	for _, pj := range r.pendingJumps {
		nt, ok := r.leader[pj.target]
		if !ok {
			nt, ok = r.instrNew[pj.target]
		}
		if !ok {
			r.fault("jump to unmapped 0x%x", pj.target)
			return
		}
		abs := r.in.TextBase + nt
		r.out[pj.off/4] = isa.J(0) | abs>>2&0x03ffffff
	}
}
