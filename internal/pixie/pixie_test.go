package pixie_test

import (
	"testing"

	"systrace/internal/asm"
	"systrace/internal/epoxie"
	"systrace/internal/isa"
	"systrace/internal/link"
	m "systrace/internal/mahler"
	"systrace/internal/obj"
	"systrace/internal/pixie"
	"systrace/internal/sim"
	"systrace/internal/trace"
)

// buildOrig compiles a module into a bare uninstrumented executable
// (with the traced start stub so xreg3 bookkeeping exists).
func buildOrig(t *testing.T, mod *m.Module) *obj.Executable {
	t.Helper()
	o, err := mod.Compile(m.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	e, err := sim.BuildBare(mod.Name, o)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return e
}

func tracedStartModule() *m.Module {
	mod := m.NewModule("pxwork")
	mod.Global("arr", 512)
	fib := mod.Func("fib", m.TInt)
	fib.Param("n", m.TInt)
	fib.Code(func(b *m.Block) {
		b.If(m.Lt(m.V("n"), m.I(2)), func(b *m.Block) { b.Return(m.V("n")) }, nil)
		b.Return(m.Add(m.Call("fib", m.Sub(m.V("n"), m.I(1))), m.Call("fib", m.Sub(m.V("n"), m.I(2)))))
	})
	f := mod.Func("main", m.TInt)
	f.Locals("i", "s")
	f.Code(func(b *m.Block) {
		b.For("i", m.I(0), m.I(32), func(b *m.Block) {
			b.StoreW(m.Add(m.Addr("arr", 0), m.Mul(m.V("i"), m.I(4))), m.Mul(m.V("i"), m.V("i")))
		})
		b.Assign("s", m.I(0))
		b.For("i", m.I(0), m.I(32), func(b *m.Block) {
			b.Assign("s", m.Add(m.V("s"), m.LoadW(m.Add(m.Addr("arr", 0), m.Mul(m.V("i"), m.I(4))))))
		})
		b.Return(m.Add(m.V("s"), m.Call("fib", m.I(9))))
	})
	return mod
}

// rebuildWithTracedStart links with the traced start stub so the
// bookkeeping area is initialized.
func buildTraced(t *testing.T, mod *m.Module) *obj.Executable {
	t.Helper()
	o, err := mod.Compile(m.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	objs := []*obj.File{sim.TracedStartObj(), o}
	e, err := sim.BuildBareObjs(mod.Name, objs)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return e
}

func TestPixieTraceCorrectness(t *testing.T) {
	orig := buildTraced(t, tracedStartModule())
	want := 32*31*63/6 + 34 // sum i^2 (0..31) + fib(9)

	// The uninstrumented program's answer.
	v0, _, err := sim.RunResult(orig, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if int(v0) != want {
		t.Fatalf("orig result %d want %d", v0, want)
	}

	res, err := pixie.Rewrite(orig, pixie.ModeTrace)
	if err != nil {
		t.Fatal(err)
	}
	pm := sim.NewBareMachine(res.Exe)
	if err := pm.Run(500_000_000); err != nil {
		t.Fatalf("pixie run: %v", err)
	}
	if got := pm.CPU.GPR[2]; int(got) != want {
		t.Fatalf("pixie changed behavior: got %d want %d", got, want)
	}

	// Trace must parse cleanly and report the original addresses.
	words := sim.TraceWords(pm)
	if len(words) == 0 {
		t.Fatal("no trace produced")
	}
	table := trace.NewSideTable(res.Exe.Instr.Blocks)
	p := trace.NewParser(nil)
	p.AddProcess(0, table)
	events, err := p.Parse(words, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	// Every fetch must be inside the original text.
	for _, ev := range events {
		if ev.Kind == trace.EvIFetch &&
			(ev.Addr < orig.TextBase || ev.Addr >= orig.TextEnd()) {
			t.Fatalf("fetch outside original text: 0x%x", ev.Addr)
		}
	}
}

func TestPixieGrowth(t *testing.T) {
	orig := buildTraced(t, tracedStartModule())
	res, err := pixie.Rewrite(orig, pixie.ModeTrace)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Exe.Instr.GrowthFactor()
	if g < 3.5 || g > 6.5 {
		t.Errorf("pixie growth %.2f, want ~4-6", g)
	}
}

func TestPixieCountMode(t *testing.T) {
	orig := buildTraced(t, tracedStartModule())
	res, err := pixie.Rewrite(orig, pixie.ModeCount)
	if err != nil {
		t.Fatal(err)
	}
	pm := sim.NewBareMachine(res.Exe)
	if err := pm.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	want := 32*31*63/6 + 34
	if got := pm.CPU.GPR[2]; int(got) != want {
		t.Fatalf("count mode changed behavior: got %d want %d", got, want)
	}

	counts := pixie.ReadCounts(pm.RAM, res)
	var total uint64
	for bi, c := range counts {
		total += uint64(c) * uint64(orig.Blocks[bi].NInstr)
	}
	if total == 0 {
		t.Fatal("no blocks counted")
	}
	// The dynamic instruction count from the counters must be close
	// to the original program's path length. (Not exact: the counters
	// also tick for crt0's uninstrumented... no — uninstrumented
	// blocks are not counted, so compare against a loose band.)
	if total < 1000 {
		t.Errorf("dynamic instruction count %d suspiciously small", total)
	}
}

// TestPixieDelaySlotShapes hand-assembles the call shapes the MIPS
// compiler emits that force pixie's terminator machinery: a jal whose
// delay slot holds a hoistable store, a jal whose delay slot writes a
// register unrelated to the target (hoisted), and an indirect call
// (jalr) whose delay slot writes the jump register itself — NOT
// hoistable, since the moved store would clobber the target address.
func TestPixieDelaySlotShapes(t *testing.T) {
	a := asm.New("shapes")
	a.Global("cell", 8)

	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 0xfff8)) // -8
	a.I(isa.SW(isa.RegRA, isa.RegSP, 0))
	// Hoistable: jal addfive with a store in the slot.
	a.LA(isa.RegT0, "cell", 0)
	a.I(isa.ORI(isa.RegA0, isa.RegZero, 10))
	a.JalSym("addfive")
	a.I(isa.SW(isa.RegA0, isa.RegT0, 0)) // slot: cell = 10 (hoist candidate)
	// v0 = 15 now; add the stored cell back.
	a.LA(isa.RegT0, "cell", 0)
	a.I(isa.LW(isa.RegT1, isa.RegT0, 0))
	a.I(isa.ADDU(isa.RegV0, isa.RegV0, isa.RegT1)) // 25
	// Indirect call: jalr through t2, slot must NOT be hoisted past
	// the call when it writes the jump register.
	a.LA(isa.RegT2, "addfive", 0)
	a.I(isa.ORI(isa.RegA0, isa.RegV0, 0))
	a.I(isa.JALR(isa.RegRA, isa.RegT2))
	a.I(isa.ORI(isa.RegT2, isa.RegZero, 0)) // slot clobbers t2
	// v0 = 30.
	a.I(isa.LW(isa.RegRA, isa.RegSP, 0))
	a.I(isa.JR(isa.RegRA))
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 8))

	a.Func("addfive", 0)
	a.I(isa.ADDIU(isa.RegV0, isa.RegA0, 5))
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)

	f := a.MustFinish()
	e, err := sim.BuildBareObjs("shapes", []*obj.File{sim.TracedStartObj(), f})
	if err != nil {
		t.Fatal(err)
	}

	v0, _, err := sim.RunResult(e, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if v0 != 30 {
		t.Fatalf("uninstrumented result %d want 30", v0)
	}

	res, err := pixie.Rewrite(e, pixie.ModeTrace)
	if err != nil {
		t.Fatal(err)
	}
	pm := sim.NewBareMachine(res.Exe)
	if err := pm.Run(10_000_000); err != nil {
		t.Fatalf("pixie run: %v", err)
	}
	if got := pm.CPU.GPR[2]; got != 30 {
		t.Fatalf("pixie changed behavior: %d want 30", got)
	}

	// The trace must parse and contain exactly two stores to `cell`
	// at its original data address.
	words := sim.TraceWords(pm)
	p := trace.NewParser(nil)
	p.AddProcess(0, trace.NewSideTable(res.Exe.Instr.Blocks))
	events, err := p.Parse(words, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	cell := e.MustSymbol("cell")
	stores := 0
	for _, ev := range events {
		if ev.Kind == trace.EvStore && ev.Addr == cell {
			stores++
		}
	}
	if stores != 1 {
		t.Errorf("stores to cell in trace = %d want 1", stores)
	}
}

// TestEpoxiePixieAgree is the strongest cross-validation of the two
// instrumenters: the same program rewritten by epoxie (object-level,
// static correction) and by pixie (executable-level, runtime
// translation) must reconstruct the *identical* reference stream —
// same kinds, same original addresses, same order.
func TestEpoxiePixieAgree(t *testing.T) {
	mod := tracedStartModule()
	o, err := mod.Compile(m.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// epoxie side.
	eb, err := epoxie.BuildInstrumented([]*obj.File{sim.TracedStartObj(), o}, link.Options{
		Name: mod.Name, TextBase: sim.BareTextBase, DataBase: sim.BareDataBase,
	}, epoxie.Config{}, epoxie.BareRuntime)
	if err != nil {
		t.Fatal(err)
	}
	em := sim.NewBareMachine(eb.Instr)
	if err := em.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	pe := trace.NewParser(nil)
	pe.AddProcess(0, trace.NewSideTable(eb.Instr.Instr.Blocks))
	eEvents, err := pe.Parse(sim.TraceWords(em), nil)
	if err != nil {
		t.Fatal(err)
	}

	// pixie side: rewrite the same original executable.
	res, err := pixie.Rewrite(eb.Orig, pixie.ModeTrace)
	if err != nil {
		t.Fatal(err)
	}
	pm := sim.NewBareMachine(res.Exe)
	if err := pm.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	pp := trace.NewParser(nil)
	pp.AddProcess(0, trace.NewSideTable(res.Exe.Instr.Blocks))
	pEvents, err := pp.Parse(sim.TraceWords(pm), nil)
	if err != nil {
		t.Fatal(err)
	}

	if em.CPU.GPR[2] != pm.CPU.GPR[2] {
		t.Fatalf("results differ: epoxie %d pixie %d", em.CPU.GPR[2], pm.CPU.GPR[2])
	}
	if len(eEvents) != len(pEvents) {
		t.Fatalf("event counts differ: epoxie %d pixie %d", len(eEvents), len(pEvents))
	}
	for i := range eEvents {
		a, b := eEvents[i], pEvents[i]
		if a.Kind != b.Kind || a.Addr != b.Addr || a.Size != b.Size {
			t.Fatalf("event %d: epoxie %v@0x%08x/%d, pixie %v@0x%08x/%d",
				i, a.Kind, a.Addr, a.Size, b.Kind, b.Addr, b.Size)
		}
	}
}
