package machine_test

import (
	"testing"

	"systrace/internal/cpu"
	"systrace/internal/dev"
	"systrace/internal/isa"
	"systrace/internal/machine"
	"systrace/internal/memsys"
	"systrace/internal/obj"
)

func TestHaltRegisterStopsMachine(t *testing.T) {
	m := machine.New(1<<20, nil)
	va := uint32(0x80001000)
	words := []isa.Word{
		isa.LUI(isa.RegT0, 0xbf00),
		isa.ORI(isa.RegT0, isa.RegT0, uint16(dev.TraceCtlBase+8)),
		isa.ORI(isa.RegT1, isa.RegZero, 42),
		isa.SW(isa.RegT1, isa.RegT0, 0),
		isa.NOP,
	}
	for i, w := range words {
		m.RAM.WriteWord(va-cpu.KSeg0Base+uint32(i)*4, uint32(w))
	}
	m.CPU.PC = va
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if !m.Halted || m.ExitStatus != 42 {
		t.Fatalf("halted=%v status=%d", m.Halted, m.ExitStatus)
	}
}

func TestDoorbellAddsAnalysisTime(t *testing.T) {
	m := machine.New(1<<20, nil)
	m.TraceCtl.Handler = func(reason uint32) uint64 { return 9999 }
	va := uint32(0x80001000)
	words := []isa.Word{
		isa.LUI(isa.RegT0, 0xbf00),
		isa.ORI(isa.RegT0, isa.RegT0, uint16(dev.TraceCtlBase+dev.TraceDoorbell)),
		isa.ORI(isa.RegT1, isa.RegZero, 1),
		isa.SW(isa.RegT1, isa.RegT0, 0),
		isa.BREAK(0),
	}
	for i, w := range words {
		m.RAM.WriteWord(va-cpu.KSeg0Base+uint32(i)*4, uint32(w))
	}
	m.CPU.PC = va
	m.CPU.HaltOnBreak = true
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.ExtraCycles() != 9999 {
		t.Errorf("extra cycles %d", m.ExtraCycles())
	}
	if m.Cycles() <= m.CPU.Stat.Instret {
		t.Error("analysis time not in machine time")
	}
}

func TestBudgetExhaustionIsAnError(t *testing.T) {
	m := machine.New(1<<20, nil)
	// Infinite loop at the vector.
	m.RAM.WriteWord(0x1000, uint32(isa.J((0x80001000)>>2)))
	m.RAM.WriteWord(0x1004, 0)
	m.CPU.PC = 0x80001000
	if err := m.Run(1000); err == nil {
		t.Error("budget exhaustion must error")
	}
}

func TestSecondsConversion(t *testing.T) {
	if machine.Seconds(machine.ClockHz) != 1.0 {
		t.Error("one second of cycles is one second")
	}
}

// TestDeviceBusAndTiming drives the uncached device window through
// CPU loads/stores with an execution-driven timing model attached:
// device reads must return register state (not bus-error), and every
// kseg1 reference must be charged the uncached penalty.
func TestDeviceBusAndTiming(t *testing.T) {
	m := machine.New(1<<20, nil)
	tm := memsys.NewTiming(memsys.DECstation5000())
	m.AttachTiming(tm, tm)

	devBase := cpu.KSeg1Base + dev.DevBase
	va := uint32(0x80001000)
	words := []isa.Word{
		// Read the disk status register (idle = 0).
		isa.LUI(isa.RegT0, uint16((devBase+dev.DiskBase+dev.DiskStatus)>>16)),
		isa.ORI(isa.RegT0, isa.RegT0, uint16(devBase+dev.DiskBase+dev.DiskStatus)),
		isa.LW(isa.RegT1, isa.RegT0, 0),
		// Write then read back the clock interval register.
		isa.LUI(isa.RegT2, uint16((devBase+dev.ClockBase+dev.ClockInterval)>>16)),
		isa.ORI(isa.RegT2, isa.RegT2, uint16(devBase+dev.ClockBase+dev.ClockInterval)),
		isa.ORI(isa.RegT3, isa.RegZero, 5000),
		isa.SW(isa.RegT3, isa.RegT2, 0),
		isa.BREAK(0),
	}
	for i, w := range words {
		m.RAM.WriteWord(va-cpu.KSeg0Base+uint32(i)*4, uint32(w))
	}
	m.CPU.PC = va
	m.CPU.HaltOnBreak = true
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := m.CPU.GPR[isa.RegT1]; got != 0 {
		t.Errorf("disk status = %d want 0 (idle)", got)
	}
	if tm.UncachedStalls == 0 {
		t.Error("uncached device references not charged by the timing model")
	}
	if m.Cycles() <= m.CPU.Stat.Instret {
		t.Error("stall cycles not included in machine time")
	}
	m.AddExtraCycles(1000)
	if m.ExtraCycles() != 1000 {
		t.Errorf("extra cycles %d", m.ExtraCycles())
	}
}

// TestLoadKernelPlacesImage: text lands at the kseg0 physical mirror
// and entry becomes the PC; non-kseg0 bases are rejected.
func TestLoadKernelPlacesImage(t *testing.T) {
	m := machine.New(1<<20, nil)
	k := &obj.Executable{
		TextBase: 0x80001000,
		DataBase: 0x80002000,
		Entry:    0x80001000,
		Text:     []uint32{uint32(isa.ORI(isa.RegT0, 0, 7)), uint32(isa.BREAK(0))},
		Data:     []byte{1, 2, 3, 4},
	}
	if err := m.LoadKernel(k); err != nil {
		t.Fatal(err)
	}
	m.CPU.HaltOnBreak = true
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.CPU.GPR[isa.RegT0] != 7 {
		t.Error("kernel text did not execute")
	}
	if got := m.RAM.ReadWord(0x2000); got != 0x01020304 {
		t.Errorf("kernel data = 0x%08x", got)
	}
	bad := &obj.Executable{TextBase: 0x00400000}
	if err := machine.New(1<<20, nil).LoadKernel(bad); err == nil {
		t.Error("user-space kernel base accepted")
	}
}
