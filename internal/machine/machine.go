// Package machine composes the simulated DECstation-like computer:
// CPU, physical memory, and devices, with a cycle-accurate run loop.
// Machine time (cycles) is instructions retired plus memory-system
// stall cycles (when an execution-driven memory model is attached)
// plus the wall time of trace-analysis phases. Devices — most
// importantly the disk and the interval clock — run on machine time,
// which is what makes instrumentation-induced time dilation behave as
// it did on real hardware (paper §4.1).
package machine

import (
	"fmt"

	"systrace/internal/cpu"
	"systrace/internal/dev"
	"systrace/internal/mem"
	"systrace/internal/obj"
)

// Staller reports accumulated memory stall cycles; the execution-driven
// memory system simulator implements it (along with cpu.Observer).
type Staller interface {
	StallCycles() uint64
}

// ClockHz is the processor frequency: 25 MHz, as on the DECstation
// 5000/200.
const ClockHz = 25_000_000

// Halt register: a store here stops the machine (the kernel's final
// act). The value is the exit status.
const haltOffset = dev.TraceCtlBase + 0x8

// Machine is one simulated computer.
type Machine struct {
	RAM      *mem.RAM
	CPU      *cpu.CPU
	Clock    *dev.Clock
	Console  *dev.Console
	Disk     *dev.Disk
	TraceCtl *dev.TraceCtl

	extraCycles   uint64 // analysis-phase time
	overlapCycles uint64 // analysis retired concurrently with generation
	stall         Staller
	nextEvent     uint64

	Halted     bool
	ExitStatus uint32
}

// New builds a machine with the given RAM size and disk image.
func New(ramSize uint32, diskImage []byte) *Machine {
	m := &Machine{RAM: mem.NewRAM(ramSize)}
	m.CPU = cpu.New(m, 0)
	// Every store path that bypasses the CPU's own write port must
	// still invalidate predecoded text: host-side writes through the
	// RAM API report here, and the disk DMAs through the machine (see
	// Bytes/DMAWrote) so raw-slice transfers report too.
	m.RAM.SetWriteHook(m.CPU.InvalidatePhys)
	m.Clock = dev.NewClock(m.CPU)
	m.Console = &dev.Console{}
	m.Disk = dev.NewDisk(m.CPU, m, diskImage, dev.DefaultDiskParams)
	m.TraceCtl = &dev.TraceCtl{}
	m.nextEvent = ^uint64(0)
	return m
}

// Bytes implements dev.DMA.
func (m *Machine) Bytes() []byte { return m.RAM.Bytes() }

// DMAWrote implements dev.WriteNotifier: device writes into physical
// memory invalidate any predecoded frames under the transfer.
func (m *Machine) DMAWrote(p, n uint32) { m.CPU.InvalidatePhys(p, n) }

// AttachTiming connects an execution-driven memory model: obs sees
// every reference; stall contributes to machine time.
func (m *Machine) AttachTiming(obs cpu.Observer, stall Staller) {
	m.CPU.Obs = obs
	m.stall = stall
}

// Cycles returns current machine time.
func (m *Machine) Cycles() uint64 {
	c := m.CPU.Stat.Instret + m.extraCycles
	if m.stall != nil {
		c += m.stall.StallCycles()
	}
	return c
}

// ExtraCycles returns time consumed by analysis phases.
func (m *Machine) ExtraCycles() uint64 { return m.extraCycles }

// AddExtraCycles advances machine time without executing instructions
// (used by the analysis doorbell).
func (m *Machine) AddExtraCycles(c uint64) { m.extraCycles += c }

// AddOverlapCycles records analysis work retired concurrently with
// generation (the streaming drain's consumer). Unlike extra cycles it
// does not advance machine time — that is the point of overlapping —
// but keeps the hidden analysis share observable.
func (m *Machine) AddOverlapCycles(c uint64) { m.overlapCycles += c }

// OverlapCycles returns analysis cycles retired concurrently with
// generation (zero outside streaming mode).
func (m *Machine) OverlapCycles() uint64 { return m.overlapCycles }

func (m *Machine) isDev(p uint32) bool {
	return p >= dev.DevBase && p < dev.DevBase+dev.DevSize
}

// Read implements cpu.Bus.
func (m *Machine) Read(p uint32, size int) (uint32, bool) {
	if m.isDev(p) {
		off := p - dev.DevBase
		switch {
		case off < dev.ConsoleBase:
			return m.Clock.Read(off - dev.ClockBase), true
		case off < dev.DiskBase:
			return m.Console.Read(off - dev.ConsoleBase), true
		case off < dev.TraceCtlBase:
			return m.Disk.Read(off - dev.DiskBase), true
		default:
			return m.TraceCtl.Read(off - dev.TraceCtlBase), true
		}
	}
	return m.RAM.Read(p, size)
}

// Write implements cpu.Bus.
func (m *Machine) Write(p uint32, size int, v uint32) bool {
	if m.isDev(p) {
		off := p - dev.DevBase
		now := m.Cycles()
		switch {
		case off == haltOffset:
			m.Halted = true
			m.ExitStatus = v
			m.CPU.Halted = true
		case off < dev.ConsoleBase:
			m.Clock.Write(now, off-dev.ClockBase, v)
		case off < dev.DiskBase:
			m.Console.Write(off-dev.ConsoleBase, v)
		case off < dev.TraceCtlBase:
			m.Disk.Write(now, off-dev.DiskBase, v)
		default:
			extra := m.TraceCtl.Write(off-dev.TraceCtlBase, v)
			m.extraCycles += extra
		}
		m.refreshNextEvent()
		return true
	}
	return m.RAM.Write(p, size, v)
}

// FetchWord implements cpu.Bus.
func (m *Machine) FetchWord(p uint32) (uint32, bool) {
	if m.isDev(p) {
		return 0, false
	}
	return m.RAM.Read(p, 4)
}

// RAMPage implements cpu.Bus.
func (m *Machine) RAMPage(p uint32) []byte {
	if m.isDev(p) {
		return nil
	}
	return m.RAM.Page(p)
}

func (m *Machine) refreshNextEvent() {
	n := m.Clock.NextEvent()
	if d := m.Disk.NextEvent(); d < n {
		n = d
	}
	m.nextEvent = n
}

// Run executes until the machine halts or maxInstr instructions have
// retired. It returns an error for simulator-level faults (a bug in
// guest code generation, never normal operation).
func (m *Machine) Run(maxInstr uint64) error {
	c := m.CPU
	limit := c.Stat.Instret + maxInstr
	m.refreshNextEvent()
	// Step in bursts between device events to keep the per-instruction
	// loop overhead low. Without a stall model, machine time advances
	// in instruction-sized steps except at doorbell writes (an active
	// analysis handler adds cycles there), and the long-burst loop's
	// mid-burst checks deliver any overdue event immediately after the
	// jump — so traced boots run long bursts too, which is what lets
	// the batched StepN path and the superblock tier stretch their
	// dispatches. This replaces the legacy traced configuration that
	// pinned bursts at 64 instructions and delivered events up to a
	// burst late after an analysis jump. A stall model still forces
	// short bursts: it adds time on every instruction, so only the
	// burst bound keeps event delivery close.
	maxBurst := uint64(64)
	if m.stall == nil {
		maxBurst = 16384
	}
	for !m.Halted && !c.Halted && c.Stat.Instret < limit {
		burst := maxBurst
		now := m.Cycles()
		if m.nextEvent > now && m.nextEvent-now < burst {
			burst = m.nextEvent - now
		}
		if burst == 0 {
			burst = 1
		}
		if c.Stat.Instret+burst > limit {
			burst = limit - c.Stat.Instret
		}
		if maxBurst == 64 {
			if c.PredecodeActive() && c.Obs == nil {
				// Short-burst batched loop: the traced path's
				// replacement for the legacy per-Step loop. Neither
				// loop checks device events mid-burst — delivery
				// happens after the burst in both — so batching
				// through StepN (and the superblock tier under it)
				// retires the identical instruction sequence at the
				// identical event instants: the guest's instrumented
				// stores land in the trace buffer byte-for-byte as
				// before, just without per-instruction loop overhead.
				// Doorbell writes and exceptions end a batch (pdExit),
				// and the single Step makes progress over whatever the
				// batch refused, exactly like the long-burst loop.
				for i := uint64(0); i < burst; {
					i += c.StepN(burst - i)
					if i >= burst {
						break
					}
					if !c.Step() {
						break
					}
					i++
				}
			} else {
				for i := uint64(0); i < burst; i++ {
					if !c.Step() {
						break
					}
				}
			}
		} else {
			// Long bursts must notice a device being reprogrammed
			// mid-burst (e.g. the guest starting the clock), or its
			// first event would be delivered up to a burst late.
			// StepN batches the stretches where nothing can change
			// mid-burst (it returns at every exception, COP0 op, and
			// device access); a single Step then makes progress over
			// whatever the batch refused before the batch resumes.
			// The m.Cycles() checks catch analysis time added by a
			// doorbell mid-burst: overdue events are then delivered
			// immediately instead of up to a burst late.
			ne := m.nextEvent
			if c.PredecodeActive() && c.Obs == nil {
				for i := uint64(0); i < burst; {
					i += c.StepN(burst - i)
					if i >= burst || m.nextEvent != ne || m.Cycles() >= ne {
						break
					}
					if !c.Step() {
						break
					}
					i++
					if m.nextEvent != ne || m.Cycles() >= ne {
						break
					}
				}
			} else {
				for i := uint64(0); i < burst; i++ {
					if !c.Step() {
						break
					}
					if m.nextEvent != ne || m.Cycles() >= ne {
						break
					}
				}
			}
		}
		if c.FaultMsg != "" {
			return fmt.Errorf("machine fault at pc=0x%08x: %s", c.PC, c.FaultMsg)
		}
		// Guest-PC sampling for the paths that don't flow through
		// StepN (short bursts, observers): skew bounded by the burst.
		c.ProfPoll()
		if now = m.Cycles(); now >= m.nextEvent {
			m.Clock.Advance(now)
			m.Disk.Advance(now)
			m.refreshNextEvent()
		}
	}
	if !m.Halted && !c.Halted && c.Stat.Instret >= limit {
		return fmt.Errorf("machine: instruction budget %d exhausted at pc=0x%08x (livelock?)",
			maxInstr, c.PC)
	}
	return nil
}

// LoadKernel copies a kernel executable (linked for kseg0) into
// physical memory and points the CPU at its entry.
func (m *Machine) LoadKernel(k *obj.Executable) error {
	if k.TextBase < cpu.KSeg0Base || k.TextBase >= cpu.KSeg1Base {
		return fmt.Errorf("machine: kernel text base 0x%x not in kseg0", k.TextBase)
	}
	text := make([]byte, len(k.Text)*4)
	for i, w := range k.Text {
		text[i*4] = byte(w >> 24)
		text[i*4+1] = byte(w >> 16)
		text[i*4+2] = byte(w >> 8)
		text[i*4+3] = byte(w)
	}
	if err := m.RAM.WriteBytes(k.TextBase-cpu.KSeg0Base, text); err != nil {
		return err
	}
	if err := m.RAM.WriteBytes(k.DataBase-cpu.KSeg0Base, k.Data); err != nil {
		return err
	}
	m.CPU.PC = k.Entry
	return nil
}

// Seconds converts machine cycles to simulated seconds at ClockHz.
func Seconds(cycles uint64) float64 { return float64(cycles) / ClockHz }
