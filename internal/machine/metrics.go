package machine

import "systrace/internal/telemetry"

// RegisterMetrics registers sampled telemetry series over machine time
// and the devices. Machine cycles are exported split by phase — cpu
// (instructions retired), mem_stall (memory-system stall cycles from
// an attached execution-driven model), and analysis (cycles consumed
// by trace-analysis phases behind the doorbell) — so the
// generation/analysis duty cycle of the tracing system is directly
// readable from the metrics document.
func (m *Machine) RegisterMetrics(r *telemetry.Registry, labels ...telemetry.Label) {
	phase := func(p string) []telemetry.Label {
		return append([]telemetry.Label{telemetry.L("phase", p)}, labels...)
	}
	const cyclesHelp = "machine cycles by phase: cpu, mem_stall, analysis"
	r.Sample("machine_cycles_total", cyclesHelp,
		func() uint64 { return m.CPU.Stat.Instret }, phase("cpu")...)
	r.Sample("machine_cycles_total", cyclesHelp, func() uint64 {
		if m.stall == nil {
			return 0
		}
		return m.stall.StallCycles()
	}, phase("mem_stall")...)
	r.Sample("machine_cycles_total", cyclesHelp,
		func() uint64 { return m.extraCycles }, phase("analysis")...)
	r.Sample("machine_overlap_analysis_cycles_total",
		"analysis cycles retired concurrently with generation under the streaming drain (not part of machine time)",
		func() uint64 { return m.overlapCycles }, labels...)

	r.Sample("machine_clock_interrupts_total", "interval clock interrupts raised",
		func() uint64 { return m.Clock.Raised }, labels...)
	r.Sample("machine_disk_reads_total", "disk read operations completed",
		func() uint64 { return m.Disk.Reads }, labels...)
	r.Sample("machine_disk_writes_total", "disk write operations completed",
		func() uint64 { return m.Disk.Writes }, labels...)
	r.Sample("machine_disk_seeks_total", "disk seeks performed",
		func() uint64 { return m.Disk.SeeksPerformed }, labels...)
	r.Sample("machine_disk_bytes_total", "bytes transferred by disk DMA",
		func() uint64 { return m.Disk.BytesTransfered }, labels...)
	r.Sample("machine_trace_doorbells_total",
		"trace-control doorbell rings (generation→analysis transitions)",
		func() uint64 { return m.TraceCtl.Doorbells }, labels...)
}
