package verify_test

import (
	"strings"
	"testing"

	"systrace/internal/asm"
	"systrace/internal/epoxie"
	"systrace/internal/isa"
	"systrace/internal/link"
	m "systrace/internal/mahler"
	"systrace/internal/obj"
	"systrace/internal/sim"
	"systrace/internal/telemetry"
	"systrace/internal/trace"
	"systrace/internal/verify"
)

// buildModule instruments a mahler module the way epoxie_test does.
func buildModule(t *testing.T, mod *m.Module, kind epoxie.RuntimeKind) *epoxie.Build {
	t.Helper()
	o, err := mod.Compile(m.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return buildObjs(t, mod.Name, []*obj.File{sim.TracedStartObj(), o}, kind)
}

func buildObjs(t *testing.T, name string, objs []*obj.File, kind epoxie.RuntimeKind) *epoxie.Build {
	t.Helper()
	b, err := epoxie.BuildInstrumented(objs, link.Options{
		Name:     name,
		TextBase: sim.BareTextBase,
		DataBase: sim.BareDataBase,
	}, epoxie.Config{}, kind)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	return b
}

// testModule exercises loops, calls, stolen-register pressure, and
// memory traffic.
func testModule() *m.Module {
	mod := m.NewModule("verifyprog")
	mod.Global("arr", 256)
	fib := mod.Func("fib", m.TInt)
	fib.Param("n", m.TInt)
	fib.Code(func(bl *m.Block) {
		bl.If(m.Lt(m.V("n"), m.I(2)), func(bl *m.Block) { bl.Return(m.V("n")) }, nil)
		bl.Return(m.Add(m.Call("fib", m.Sub(m.V("n"), m.I(1))), m.Call("fib", m.Sub(m.V("n"), m.I(2)))))
	})
	f := mod.Func("main", m.TInt)
	// Enough locals to pin into s5..s7 so register stealing shows up.
	f.Locals("a", "b", "c", "d", "e", "g", "h", "i", "sum")
	f.Code(func(bl *m.Block) {
		bl.Assign("sum", m.I(0))
		bl.For("i", m.I(0), m.I(16), func(bl *m.Block) {
			bl.StoreW(m.Add(m.Addr("arr", 0), m.Mul(m.V("i"), m.I(4))), m.Mul(m.V("i"), m.I(3)))
		})
		bl.For("i", m.I(0), m.I(16), func(bl *m.Block) {
			bl.Assign("sum", m.Add(m.V("sum"), m.LoadW(m.Add(m.Addr("arr", 0), m.Mul(m.V("i"), m.I(4))))))
		})
		bl.Return(m.Add(m.V("sum"), m.Call("fib", m.I(6))))
	})
	return mod
}

// hoistObj hand-writes code with a memory instruction in a branch
// delay slot (so the rewriter must hoist it) plus a backward branch
// and a known plain instruction for targeted mutations.
func hoistObj(t *testing.T) *obj.File {
	t.Helper()
	a := asm.New("hoistprog")
	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegT0, isa.RegZero, 7)) // known-plain mutation target
	a.Label("top")
	a.I(isa.SW(isa.RegT0, isa.RegSP, 64))
	a.I(isa.ADDIU(isa.RegT0, isa.RegT0, 0xffff)) // t0--
	a.Br(isa.BNE(isa.RegT0, isa.RegZero, 0), "top")
	a.I(isa.NOP)
	a.I(isa.JR(isa.RegRA))
	a.I(isa.LW(isa.RegV0, isa.RegSP, 64)) // delay-slot load: must be hoisted
	f, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func cloneExe(e *obj.Executable) *obj.Executable {
	ne := *e
	ne.Text = append([]isa.Word(nil), e.Text...)
	ii := *e.Instr
	ii.Blocks = append([]obj.InstrBlock(nil), e.Instr.Blocks...)
	ii.Flow.EARebases = append([]obj.EARebase(nil), e.Instr.Flow.EARebases...)
	ne.Instr = &ii
	return &ne
}

func mustVerify(t *testing.T, e *obj.Executable) *verify.Result {
	t.Helper()
	res, err := verify.Executable(e)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	return res
}

func requireClean(t *testing.T, e *obj.Executable) *verify.Result {
	t.Helper()
	res := mustVerify(t, e)
	if !res.Clean() {
		for _, d := range res.Diags {
			t.Errorf("unexpected diagnostic: %s", d)
		}
		t.Fatalf("%s: %d diagnostics on a stock build", e.Name, len(res.Diags))
	}
	return res
}

// setWord overwrites one text word by address.
func setWord(t *testing.T, e *obj.Executable, addr uint32, w isa.Word) {
	t.Helper()
	if addr < e.TextBase || addr >= e.TextEnd() {
		t.Fatalf("address 0x%08x outside text", addr)
	}
	e.Text[(addr-e.TextBase)/4] = w
}

// findWord returns the address of the first instrumented-block word
// satisfying pred.
func findWord(t *testing.T, e *obj.Executable, pred func(addr uint32, w isa.Word) bool) uint32 {
	t.Helper()
	for _, b := range e.Blocks {
		if b.Flags&(obj.BBNoInstrument|obj.BBHandTraced) != 0 {
			continue
		}
		for k := int32(0); k < b.NInstr; k++ {
			addr := b.Addr + uint32(k)*4
			if pred(addr, e.Text[(addr-e.TextBase)/4]) {
				return addr
			}
		}
	}
	t.Fatal("no matching instruction found")
	return 0
}

func firstInstrumentedHead(t *testing.T, e *obj.Executable) uint32 {
	t.Helper()
	for _, b := range e.Blocks {
		if b.Flags&(obj.BBNoInstrument|obj.BBHandTraced) == 0 {
			return b.Addr
		}
	}
	t.Fatal("no instrumented block")
	return 0
}

func assertRuleFires(t *testing.T, res *verify.Result, rule string) verify.Diag {
	t.Helper()
	for _, d := range res.Diags {
		if d.Rule == rule {
			return d
		}
	}
	t.Fatalf("rule %s did not fire; got %d diagnostics: %v", rule, len(res.Diags), res.Diags)
	return verify.Diag{}
}

func TestVerifyCleanBuilds(t *testing.T) {
	for _, kind := range []epoxie.RuntimeKind{epoxie.UserRuntime, epoxie.KernelRuntime, epoxie.BareRuntime} {
		b := buildModule(t, testModule(), kind)
		res := requireClean(t, b.Instr)
		for _, rule := range []string{verify.RuleBBHead, verify.RuleMemTrace, verify.RuleSteal,
			verify.RuleBranchTarget, verify.RuleSideTable} {
			if res.Checks[rule] == 0 {
				t.Errorf("kind %d: rule %s never checked", kind, rule)
			}
		}
		if res.Blocks == 0 {
			t.Error("no instrumented blocks walked")
		}
	}
}

func TestVerifyCleanHoist(t *testing.T) {
	b := buildObjs(t, "hoist", []*obj.File{sim.TracedStartObj(), hoistObj(t)}, epoxie.BareRuntime)
	res := requireClean(t, b.Instr)
	if res.Checks[verify.RuleHoist] == 0 {
		t.Fatal("hoist rule never checked despite a delay-slot memory instruction")
	}
}

func TestVerifyErrors(t *testing.T) {
	if _, err := verify.Executable(nil); err == nil {
		t.Error("nil executable accepted")
	}
	b := buildModule(t, testModule(), epoxie.BareRuntime)
	if _, err := verify.Executable(b.Orig); err == nil {
		t.Error("uninstrumented executable accepted")
	}
	o, err := testModule().Compile(m.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ob, err := epoxie.BuildInstrumented([]*obj.File{sim.TracedStartObj(), o}, link.Options{
		Name: "origmode", TextBase: sim.BareTextBase, DataBase: sim.BareDataBase,
	}, epoxie.Config{Orig: true}, epoxie.BareRuntime)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verify.Executable(ob.Instr); err == nil ||
		!strings.Contains(err.Error(), "epoxie-orig") {
		t.Errorf("orig-mode image: want unsupported-tool error, got %v", err)
	}
}

// Mutation tests: each corrupts one aspect of a stock build and
// asserts the exact rule fires.

func TestMutationBBHeadSavedRA(t *testing.T) {
	b := buildModule(t, testModule(), epoxie.BareRuntime)
	e := cloneExe(b.Instr)
	head := firstInstrumentedHead(t, e)
	setWord(t, e, head, isa.NOP)
	d := assertRuleFires(t, mustVerify(t, e), verify.RuleBBHead)
	if d.Addr != head {
		t.Errorf("diagnostic at 0x%08x, mutation at 0x%08x", d.Addr, head)
	}
}

func TestMutationBBHeadJal(t *testing.T) {
	b := buildModule(t, testModule(), epoxie.BareRuntime)
	e := cloneExe(b.Instr)
	head := firstInstrumentedHead(t, e)
	setWord(t, e, head+4, isa.NOP)
	assertRuleFires(t, mustVerify(t, e), verify.RuleBBHead)
}

func TestMutationBBHeadLINop(t *testing.T) {
	b := buildModule(t, testModule(), epoxie.BareRuntime)
	e := cloneExe(b.Instr)
	head := firstInstrumentedHead(t, e)
	old := isa.LINopValue(e.Text[(head+8-e.TextBase)/4])
	if old < 0 {
		t.Fatal("no LINop at head+8")
	}
	setWord(t, e, head+8, isa.LINop(old+1))
	d := assertRuleFires(t, mustVerify(t, e), verify.RuleBBHead)
	if !strings.Contains(d.Msg, "trace-word count") {
		t.Errorf("wrong bb-head diagnostic: %s", d.Msg)
	}
}

func TestMutationMemTraceCallRemoved(t *testing.T) {
	b := buildModule(t, testModule(), epoxie.BareRuntime)
	e := cloneExe(b.Instr)
	mt := e.MustSymbol("memtrace")
	jal := findWord(t, e, func(_ uint32, w isa.Word) bool {
		return w>>26 == isa.OpJAL && isa.Decode(w).Target == isa.JTarget(mt)
	})
	setWord(t, e, jal, isa.NOP)
	d := assertRuleFires(t, mustVerify(t, e), verify.RuleMemTrace)
	if !strings.Contains(d.Msg, "without a memtrace call") &&
		!strings.Contains(d.Msg, "side table expects") {
		t.Errorf("wrong mem-trace diagnostic: %s", d.Msg)
	}
}

func TestMutationMemTraceSlotNotMem(t *testing.T) {
	b := buildModule(t, testModule(), epoxie.BareRuntime)
	e := cloneExe(b.Instr)
	mt := e.MustSymbol("memtrace")
	jal := findWord(t, e, func(_ uint32, w isa.Word) bool {
		return w>>26 == isa.OpJAL && isa.Decode(w).Target == isa.JTarget(mt)
	})
	setWord(t, e, jal+4, isa.ADDU(isa.RegT0, isa.RegT0, isa.RegZero))
	d := assertRuleFires(t, mustVerify(t, e), verify.RuleMemTrace)
	if d.Addr != jal+4 && !strings.Contains(d.Msg, "side table expects") {
		t.Errorf("unexpected mem-trace diagnostic: %s", d)
	}
}

func TestMutationStolenRegisterUse(t *testing.T) {
	b := buildObjs(t, "hoist", []*obj.File{sim.TracedStartObj(), hoistObj(t)}, epoxie.BareRuntime)
	e := cloneExe(b.Instr)
	// The known plain instruction from hoistObj, rewritten in place.
	plain := findWord(t, e, func(_ uint32, w isa.Word) bool {
		return w == isa.ADDIU(isa.RegT0, isa.RegZero, 7)
	})
	setWord(t, e, plain, isa.ADDU(isa.RegT0, isa.XReg1, isa.RegT0))
	d := assertRuleFires(t, mustVerify(t, e), verify.RuleSteal)
	if d.Addr != plain {
		t.Errorf("diagnostic at 0x%08x, mutation at 0x%08x", d.Addr, plain)
	}
}

func TestMutationBranchTarget(t *testing.T) {
	b := buildObjs(t, "hoist", []*obj.File{sim.TracedStartObj(), hoistObj(t)}, epoxie.BareRuntime)
	e := cloneExe(b.Instr)
	br := findWord(t, e, func(_ uint32, w isa.Word) bool {
		return w>>26 == isa.OpBNE
	})
	w := e.Text[(br-e.TextBase)/4]
	// Push the target one word past the block head, into the prologue.
	setWord(t, e, br, w&^isa.Word(0xffff)|isa.Word(uint16(w)+1))
	d := assertRuleFires(t, mustVerify(t, e), verify.RuleBranchTarget)
	if d.Addr != br {
		t.Errorf("diagnostic at 0x%08x, mutation at 0x%08x", d.Addr, br)
	}
}

func TestMutationUnsafeHoist(t *testing.T) {
	b := buildObjs(t, "hoist", []*obj.File{sim.TracedStartObj(), hoistObj(t)}, epoxie.BareRuntime)
	e := cloneExe(b.Instr)
	// The hoisted delay-slot load writes v0; retarget the jump through
	// v0 so the transfer now reads what the hoisted load clobbers.
	jr := findWord(t, e, func(_ uint32, w isa.Word) bool {
		return w == isa.JR(isa.RegRA)
	})
	setWord(t, e, jr, isa.JR(isa.RegV0))
	d := assertRuleFires(t, mustVerify(t, e), verify.RuleHoist)
	if !strings.Contains(d.Msg, "transfer reads") {
		t.Errorf("wrong hoist diagnostic: %s", d.Msg)
	}
}

func TestMutationHoistSlotNotCleared(t *testing.T) {
	b := buildObjs(t, "hoist", []*obj.File{sim.TracedStartObj(), hoistObj(t)}, epoxie.BareRuntime)
	e := cloneExe(b.Instr)
	jr := findWord(t, e, func(_ uint32, w isa.Word) bool {
		return w == isa.JR(isa.RegRA)
	})
	setWord(t, e, jr+4, isa.SW(isa.RegV0, isa.RegSP, 64))
	d := assertRuleFires(t, mustVerify(t, e), verify.RuleHoist)
	if !strings.Contains(d.Msg, "not cleared") {
		t.Errorf("wrong hoist diagnostic: %s", d.Msg)
	}
}

func TestMutationSideTable(t *testing.T) {
	b := buildModule(t, testModule(), epoxie.BareRuntime)
	e := cloneExe(b.Instr)
	e.Instr.Blocks[0].RecordAddr += 4
	assertRuleFires(t, mustVerify(t, e), verify.RuleSideTable)

	e2 := cloneExe(b.Instr)
	e2.Instr.Blocks[0].OrigAddr = 0x1000 // below text base
	d := assertRuleFires(t, mustVerify(t, e2), verify.RuleSideTable)
	if !strings.Contains(d.Msg, "outside uninstrumented text") {
		t.Errorf("wrong side-table diagnostic: %s", d.Msg)
	}
}

// deadRegObj never returns: ra is dead in every block, so the rewriter
// emits lean prologues throughout, with a known plain instruction to
// mutate.
func deadRegObj(t *testing.T) *obj.File {
	t.Helper()
	a := asm.New("deadregprog")
	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegT0, isa.RegZero, 7)) // known-plain mutation target
	a.Label("spin")
	a.Jmp("spin")
	a.I(isa.NOP)
	f, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMutationDeadRegRaLive(t *testing.T) {
	b := buildObjs(t, "deadreg", []*obj.File{sim.TracedStartObj(), deadRegObj(t)}, epoxie.BareRuntime)
	res := requireClean(t, b.Instr)
	if res.Checks[verify.RuleDeadReg] == 0 {
		t.Fatal("dead-reg rule never checked: build produced no lean blocks")
	}
	e := cloneExe(b.Instr)
	plain := findWord(t, e, func(_ uint32, w isa.Word) bool {
		return w == isa.ADDIU(isa.RegT0, isa.RegZero, 7)
	})
	blk := e.BlockFor(plain)
	if blk == nil || blk.Flags&obj.BBLeanPrologue == 0 {
		t.Fatal("mutation target is not inside a lean block")
	}
	// Inject the bug the rule exists for: the block is flagged lean (ra
	// assumed dead) but now reads ra before any definition, so the stale
	// value bbtrace restores would be consumed.
	setWord(t, e, plain, isa.ADDU(isa.RegT0, isa.RegRA, isa.RegZero))
	d := assertRuleFires(t, mustVerify(t, e), verify.RuleDeadReg)
	if d.Block != blk.Addr {
		t.Errorf("diagnostic for block 0x%08x, mutation in 0x%08x", d.Block, blk.Addr)
	}
	if !strings.Contains(d.Msg, "ra is live") {
		t.Errorf("wrong dead-reg diagnostic: %s", d.Msg)
	}
}

// clobberObj defines v1, runs an unrelated instruction, then reads v1 —
// so turning the definition into an unbracketed shadow load leaves v1
// live past the rewritten group.
func clobberObj(t *testing.T) *obj.File {
	t.Helper()
	a := asm.New("clobberprog")
	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegV1, isa.RegZero, 1))        // becomes the clobbering load
	a.I(isa.ADDU(isa.RegT0, isa.RegT0, isa.RegZero)) // the group's consumer
	a.I(isa.ADDU(isa.RegT1, isa.RegV1, isa.RegZero)) // keeps v1 live past it
	a.Label("spin")
	a.Jmp("spin")
	a.I(isa.NOP)
	f, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestMutationLiveClobber(t *testing.T) {
	b := buildObjs(t, "clobber", []*obj.File{sim.TracedStartObj(), clobberObj(t)}, epoxie.BareRuntime)
	requireClean(t, b.Instr)
	e := cloneExe(b.Instr)
	site := findWord(t, e, func(_ uint32, w isa.Word) bool {
		return w == isa.ADDIU(isa.RegV1, isa.RegZero, 1)
	})
	// Inject the bug: an unbracketed borrowed-scratch shadow load (no
	// BookTmp save/restore around it) clobbering v1 while a later
	// instruction still reads it.
	setWord(t, e, site, isa.LW(isa.RegV1, isa.XReg3, trace.BookShadow1))
	d := assertRuleFires(t, mustVerify(t, e), verify.RuleLiveClobber)
	if d.Addr != site {
		t.Errorf("diagnostic at 0x%08x, mutation at 0x%08x", d.Addr, site)
	}
	if !strings.Contains(d.Msg, "live past the rewritten group") {
		t.Errorf("wrong live-clobber diagnostic: %s", d.Msg)
	}

	// Flow-awareness negative: the same unbracketed load is legal once
	// the later read is gone, because v1 is then provably dead at the
	// end of the group.
	e2 := cloneExe(b.Instr)
	setWord(t, e2, site, isa.LW(isa.RegV1, isa.XReg3, trace.BookShadow1))
	read := findWord(t, e2, func(_ uint32, w isa.Word) bool {
		return w == isa.ADDU(isa.RegT1, isa.RegV1, isa.RegZero)
	})
	setWord(t, e2, read, isa.ADDU(isa.RegT1, isa.RegT2, isa.RegZero))
	res := mustVerify(t, e2)
	if !res.Clean() {
		for _, d := range res.Diags {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if res.Checks[verify.RuleLiveClobber] == 0 {
		t.Error("live-clobber rule never checked on the dead-scratch variant")
	}
}

// TestDiagOrderDeterministic: the same corrupted image yields the same
// diagnostics in the same order, every time.
func TestDiagOrderDeterministic(t *testing.T) {
	b := buildModule(t, testModule(), epoxie.BareRuntime)
	e := cloneExe(b.Instr)
	head := firstInstrumentedHead(t, e)
	setWord(t, e, head, isa.NOP)
	setWord(t, e, head+4, isa.NOP)
	e.Instr.Blocks[0].RecordAddr += 4
	first := mustVerify(t, e)
	if first.Clean() {
		t.Fatal("corrupted image verified clean")
	}
	for i := 0; i < 3; i++ {
		again := mustVerify(t, e)
		if len(again.Diags) != len(first.Diags) {
			t.Fatalf("run %d: %d diags, want %d", i, len(again.Diags), len(first.Diags))
		}
		for j := range again.Diags {
			if again.Diags[j] != first.Diags[j] {
				t.Fatalf("run %d diag %d: %v != %v", i, j, again.Diags[j], first.Diags[j])
			}
		}
	}
}

func TestRegisterMetrics(t *testing.T) {
	b := buildModule(t, testModule(), epoxie.BareRuntime)
	e := cloneExe(b.Instr)
	head := firstInstrumentedHead(t, e)
	setWord(t, e, head, isa.NOP)
	res := mustVerify(t, e)

	reg := telemetry.New()
	res.RegisterMetrics(reg, telemetry.L("image", e.Name))
	snap := reg.Snapshot()
	mdiag, ok := snap.Get("verify_diags_total",
		telemetry.L("image", e.Name), telemetry.L("rule", verify.RuleBBHead))
	if !ok || mdiag.Value < 1 {
		t.Fatalf("verify_diags_total{rule=bb-head} = %v (found %v)", mdiag.Value, ok)
	}
	mpass, ok := snap.Get("verify_checks_total", telemetry.L("image", e.Name),
		telemetry.L("rule", verify.RuleMemTrace), telemetry.L("result", "pass"))
	if !ok || mpass.Value < 1 {
		t.Fatalf("verify_checks_total{rule=mem-trace,result=pass} = %v (found %v)", mpass.Value, ok)
	}
	if mb, ok := snap.Get("verify_blocks_total", telemetry.L("image", e.Name)); !ok || mb.Value < 1 {
		t.Fatal("verify_blocks_total missing")
	}
}

// eaObj hand-writes an fp-anchored frame — which the compiler never
// emits — so the rewriter provably rebases a memory operand onto sp,
// plus an sp-based reference (specialized to memtrace_sp) and an
// unknown-base reference (general memtrace) for targeted mutations.
func eaObj(t *testing.T) *obj.File {
	t.Helper()
	a := asm.New("eaprog")
	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, uint16(0x10000-32)))
	a.I(isa.ADDU(isa.RegFP, isa.RegSP, isa.RegZero)) // fp := sp
	a.I(isa.SW(isa.RegT0, isa.RegFP, 8))             // rebased to 8(sp), routed to memtrace_sp
	a.I(isa.LW(isa.RegT1, isa.RegSP, 16))            // already sp-based: memtrace_sp
	a.I(isa.LW(isa.RegT2, isa.RegA0, 0))             // unknown base: general memtrace
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 32))
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func buildEA(t *testing.T) *epoxie.Build {
	t.Helper()
	return buildObjs(t, "ea", []*obj.File{sim.TracedStartObj(), eaObj(t)}, epoxie.BareRuntime)
}

func TestVerifyCleanEARebase(t *testing.T) {
	b := buildEA(t)
	res := requireClean(t, b.Instr)
	fl := b.Instr.Instr.Flow
	if fl.EARebased < 1 || len(fl.EARebases) != fl.EARebased {
		t.Fatalf("EARebased = %d with %d records, want >= 1 and equal", fl.EARebased, len(fl.EARebases))
	}
	if fl.EASpecial < 2 {
		t.Fatalf("EASpecial = %d, want >= 2 (rebased store + direct sp load)", fl.EASpecial)
	}
	if res.Checks[verify.RuleAddrClass] == 0 {
		t.Error("addr-class rule never checked")
	}
	if res.Checks[verify.RuleRedundantEA] == 0 {
		t.Error("redundant-ea rule never checked")
	}
	reb := fl.EARebases[0]
	if got := b.Instr.Text[(reb.Addr-b.Instr.TextBase)/4]; got != isa.SW(isa.RegT0, isa.RegSP, 8) {
		t.Errorf("rebased slot word = %#x, want sw t0,8(sp)", uint32(got))
	}
	if reb.OrigBase != isa.RegFP || reb.NewBase != isa.RegSP {
		t.Errorf("rebase record %s -> %s, want fp -> sp",
			isa.RegName(int(reb.OrigBase)), isa.RegName(int(reb.NewBase)))
	}
}

func TestMutationRedundantEAEncoding(t *testing.T) {
	b := buildEA(t)
	e := cloneExe(b.Instr)
	reb := e.Instr.Flow.EARebases[0]
	setWord(t, e, reb.Addr, isa.SW(isa.RegT0, isa.RegSP, 12))
	d := assertRuleFires(t, mustVerify(t, e), verify.RuleRedundantEA)
	if !strings.Contains(d.Msg, "does not encode") {
		t.Errorf("wrong redundant-ea diagnostic: %s", d.Msg)
	}
}

func TestMutationRedundantEAUnprovable(t *testing.T) {
	b := buildEA(t)
	e := cloneExe(b.Instr)
	// Claim the rebase proved t5+8 == sp+8; t5 is unknown there, so the
	// verifier's independent re-proof must fail.
	e.Instr.Flow.EARebases[0].OrigBase = isa.RegT5
	d := assertRuleFires(t, mustVerify(t, e), verify.RuleRedundantEA)
	if !strings.Contains(d.Msg, "re-prove") {
		t.Errorf("wrong redundant-ea diagnostic: %s", d.Msg)
	}
}

func TestMutationAddrClassSPRoute(t *testing.T) {
	b := buildEA(t)
	e := cloneExe(b.Instr)
	slot := findWord(t, e, func(_ uint32, w isa.Word) bool {
		return w == isa.LW(isa.RegT1, isa.RegSP, 16)
	})
	setWord(t, e, slot, isa.LW(isa.RegT1, isa.RegT0, 16))
	d := assertRuleFires(t, mustVerify(t, e), verify.RuleAddrClass)
	if !strings.Contains(d.Msg, "not sp") {
		t.Errorf("wrong addr-class diagnostic: %s", d.Msg)
	}
}

func TestMutationAddrClassNullPage(t *testing.T) {
	b := buildEA(t)
	e := cloneExe(b.Instr)
	slot := findWord(t, e, func(_ uint32, w isa.Word) bool {
		return w == isa.LW(isa.RegT2, isa.RegA0, 0)
	})
	setWord(t, e, slot, isa.LW(isa.RegT2, isa.RegZero, 256))
	d := assertRuleFires(t, mustVerify(t, e), verify.RuleAddrClass)
	if !strings.Contains(d.Msg, "null page") {
		t.Errorf("wrong addr-class diagnostic: %s", d.Msg)
	}
}
