package verify

import "systrace/internal/telemetry"

// RegisterMetrics publishes the result on reg so verification status
// shows up next to the distortion dashboard: one diagnostics counter
// and a pass/fail check counter per rule, plus the block count.
func (r *Result) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	if reg == nil {
		return
	}
	fails := r.Fails()
	for _, rule := range Rules {
		withRule := func(extra ...telemetry.Label) []telemetry.Label {
			ls := make([]telemetry.Label, 0, len(labels)+1+len(extra))
			ls = append(ls, labels...)
			ls = append(ls, telemetry.L("rule", rule))
			return append(ls, extra...)
		}
		reg.Counter("verify_diags_total",
			"static verification findings by rule", withRule()...).
			Add(uint64(fails[rule]))
		pass := r.Checks[rule] - fails[rule]
		if pass < 0 {
			pass = 0
		}
		reg.Counter("verify_checks_total",
			"static verification checks performed, by rule and outcome",
			withRule(telemetry.L("result", "pass"))...).
			Add(uint64(pass))
		reg.Counter("verify_checks_total",
			"static verification checks performed, by rule and outcome",
			withRule(telemetry.L("result", "fail"))...).
			Add(uint64(fails[rule]))
	}
	reg.Counter("verify_blocks_total",
		"instrumented basic blocks statically verified", labels...).
		Add(uint64(r.Blocks))
}
