// Package verify statically checks an epoxie-instrumented executable
// against the instrumentation invariants the paper could only validate
// dynamically (§4.3 validates traces by comparing predictions against
// direct measurement). The verifier decodes the rewritten text with
// internal/isa and walks every instrumented basic block, confirming —
// without running the machine — that the trace the binary would
// produce is the trace the parsing library expects:
//
//   - bb-head: every instrumented block begins with the Figure 2
//     prologue `sw ra,124(xreg3); jal bbtrace; li zero,N`, with N
//     equal to the trace words the block generates (§3.2).
//   - mem-trace: every memory instruction is reached through a
//     `jal memtrace` whose delay slot lets memtrace compute the
//     right effective address — the instruction itself, or an EA
//     no-op with matching base/offset in the hazard case (§3.2) —
//     and the per-block reference count, widths, and load/store
//     kinds agree with the side table.
//   - steal: the stolen registers xreg1..xreg3 never appear in
//     rewritten user code outside the shadow load/store idiom
//     (§3.2/§3.5: uses "are replaced with sequences of instructions
//     that use a 'shadow' value for the register, in memory").
//   - branch-target: every static control transfer in instrumented
//     code lands on a post-rewrite block head, so execution can
//     never enter a block past its trace prologue (§3.2's address
//     correction).
//   - hoist: when the original delay slot held a memory instruction,
//     the rewriter hoisted it above the transfer; the hoist must
//     have been safe (the transfer must not read what the hoisted
//     instruction writes) and must leave a nop in the slot.
//   - side-table: the static side table and the image agree — each
//     record address is the jal-return address of an instrumented
//     block head, record addresses are unique, and original
//     addresses fall inside the uninstrumented text (§3.5's "lookup
//     table in the trace parsing library").
//
// Findings are structured diagnostics in a deterministic order, so a
// corrupted binary fails the same way every time.
package verify

import (
	"fmt"
	"sort"

	"systrace/internal/dataflow"
	"systrace/internal/obj"
)

// Rule identifiers. Each encodes one paper invariant (see the package
// comment and DESIGN.md's "Static verification" section).
const (
	RuleBBHead       = "bb-head"
	RuleMemTrace     = "mem-trace"
	RuleSteal        = "steal"
	RuleBranchTarget = "branch-target"
	RuleHoist        = "hoist"
	RuleSideTable    = "side-table"
	// RuleDeadReg: a block flagged lean (the rewriter elided the
	// prologue's ra save because liveness proved ra dead on entry)
	// must have ra dead there under the verifier's own, independently
	// derived liveness over the rewritten image.
	RuleDeadReg = "dead-reg"
	// RuleLiveClobber: instrumentation never clobbers a live register
	// without restoring it — an unbracketed borrowed-scratch shadow
	// load is legal only when the scratch is dead once the rewritten
	// group ends.
	RuleLiveClobber = "live-clobber"
	// RuleAddrClass: when the verifier's own value analysis proves a
	// traced effective address constant, the address must be plausible
	// — not in the null page, not a store into text, not misaligned
	// for its access width. A group routed to the specialized
	// memtrace_sp entry must really have sp as its slot base.
	RuleAddrClass = "addr-class"
	// RuleRedundantEA: every EA rebase the rewriter performed (its
	// claim that base+imm was provably equal to anchor+imm') must be
	// re-provable by the verifier's own, independently derived value
	// analysis over the rewritten image.
	RuleRedundantEA = "redundant-ea"
)

// Rules lists every rule identifier in report order.
var Rules = []string{
	RuleBBHead, RuleMemTrace, RuleSteal, RuleBranchTarget, RuleHoist, RuleSideTable,
	RuleDeadReg, RuleLiveClobber, RuleAddrClass, RuleRedundantEA,
}

// Diag is one verification finding.
type Diag struct {
	Addr  uint32 `json:"addr"`  // address of the offending instruction or table entry
	Block uint32 `json:"block"` // head address of the rewritten block it belongs to
	Rule  string `json:"rule"`
	Msg   string `json:"msg"`
}

func (d Diag) String() string {
	return fmt.Sprintf("0x%08x [%s] %s (block 0x%08x)", d.Addr, d.Rule, d.Msg, d.Block)
}

// Result is the outcome of verifying one executable.
type Result struct {
	Name   string         `json:"name"`
	Blocks int            `json:"blocks"` // instrumented blocks walked
	Checks map[string]int `json:"checks"` // rule -> checks performed
	Diags  []Diag         `json:"diags"`  // violations, sorted by (Addr, Rule, Msg)
}

// Clean reports whether no invariant was violated.
func (r *Result) Clean() bool { return len(r.Diags) == 0 }

// Fails returns the number of diagnostics per rule.
func (r *Result) Fails() map[string]int {
	out := make(map[string]int, len(Rules))
	for _, d := range r.Diags {
		out[d.Rule]++
	}
	return out
}

// Executable verifies an epoxie-instrumented image. It returns an
// error when the image cannot be verified at all (not instrumented,
// unknown tool, missing runtime symbols); instrumentation defects are
// reported as Diags in the Result, never as errors.
func Executable(e *obj.Executable) (*Result, error) {
	if e == nil {
		return nil, fmt.Errorf("verify: nil executable")
	}
	if e.Instr == nil {
		return nil, fmt.Errorf("verify: %s is not instrumented", e.Name)
	}
	if e.Instr.Tool != "epoxie" {
		return nil, fmt.Errorf("verify: %s: unsupported instrumentation tool %q (only epoxie's compact emission is verifiable)",
			e.Name, e.Instr.Tool)
	}
	bb, okBB := e.Symbol("bbtrace")
	mt, okMT := e.Symbol("memtrace")
	if !okBB || !okMT {
		return nil, fmt.Errorf("verify: %s: tracing runtime symbols missing (bbtrace %v, memtrace %v)",
			e.Name, okBB, okMT)
	}
	mtsp, okSP := e.Symbol("memtrace_sp")

	w := newWalker(e, bb, mt, mtsp, okSP)
	// The verifier's own liveness and value analysis over the rewritten
	// image, for the flow rules. Trace-runtime calls are transparent
	// (they save and restore what they touch, except the deliberately
	// unmodeled ra restore); the rewriter's relocation-level
	// address-taken and interior-escape views ride in the side table.
	// If the image is too damaged to analyze, the structural rules
	// still run and report the damage.
	transparent := []uint32{bb, mt}
	if okSP {
		transparent = append(transparent, mtsp)
	}
	if facts, err := dataflow.AnalyzeExecutable(e, dataflow.ExeConfig{
		Transparent: transparent,
		AddrTaken:   e.Instr.Flow.AddrTaken,
		Poison:      e.Instr.Flow.EscapedText,
	}); err == nil {
		w.flow = facts
	}
	w.sideTable()
	w.rebases()
	for i := range e.Blocks {
		b := &e.Blocks[i]
		if b.Flags&(obj.BBNoInstrument|obj.BBHandTraced) != 0 {
			continue
		}
		w.block(b)
		w.res.Blocks++
	}

	sort.Slice(w.res.Diags, func(i, j int) bool {
		a, b := w.res.Diags[i], w.res.Diags[j]
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return w.res, nil
}
