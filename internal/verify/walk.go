package verify

import (
	"fmt"

	"systrace/internal/epoxie"
	"systrace/internal/isa"
	"systrace/internal/obj"
	"systrace/internal/trace"
)

const (
	xr1 = isa.XReg1
	xr2 = isa.XReg2
	xr3 = isa.XReg3

	// The compact prologue is three words; the basic-block record
	// address is the return address of its jal, i.e. head + 12.
	prologueBytes = 12
)

// walker carries the per-executable verification state.
type walker struct {
	e        *obj.Executable
	res      *Result
	bb, mt   uint32          // bbtrace / memtrace entry addresses
	heads    map[uint32]bool // every post-rewrite block head
	instrSet map[uint32]bool // heads of instrumented blocks
	byRecord map[uint32]*obj.InstrBlock
	scratch  map[int]bool // registers the steal idiom may borrow
}

func newWalker(e *obj.Executable, bb, mt uint32) *walker {
	w := &walker{
		e:        e,
		res:      &Result{Name: e.Name, Checks: make(map[string]int)},
		bb:       bb,
		mt:       mt,
		heads:    make(map[uint32]bool, len(e.Blocks)),
		instrSet: make(map[uint32]bool),
		byRecord: make(map[uint32]*obj.InstrBlock, len(e.Instr.Blocks)),
		scratch:  make(map[int]bool),
	}
	for i := range e.Blocks {
		b := &e.Blocks[i]
		w.heads[b.Addr] = true
		if b.Flags&(obj.BBNoInstrument|obj.BBHandTraced) == 0 {
			w.instrSet[b.Addr] = true
		}
	}
	for _, r := range epoxie.ScratchRegs() {
		w.scratch[r] = true
	}
	return w
}

func (w *walker) check(rule string) { w.res.Checks[rule]++ }

func (w *walker) diag(addr, block uint32, rule, format string, args ...any) {
	w.res.Diags = append(w.res.Diags,
		Diag{Addr: addr, Block: block, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// sideTable checks the static side table against the image: record
// addresses must be unique jal-return addresses of instrumented block
// heads (or hand-traced heads), original addresses must fall inside
// the uninstrumented text, and the trace parsing library's lookup
// table must resolve each record to the same entry.
func (w *walker) sideTable() {
	ii := w.e.Instr
	origLo := w.e.TextBase
	origHi := w.e.TextBase + ii.OrigTextSize
	st := trace.NewSideTable(ii.Blocks)
	for i := range ii.Blocks {
		ib := &ii.Blocks[i]
		w.check(RuleSideTable)
		if prev, dup := w.byRecord[ib.RecordAddr]; dup {
			w.diag(ib.RecordAddr, ib.RecordAddr, RuleSideTable,
				"duplicate record address (also maps original block 0x%08x)", prev.OrigAddr)
			continue
		}
		w.byRecord[ib.RecordAddr] = ib
		if got := st.Lookup(ib.RecordAddr); got == nil || got.OrigAddr != ib.OrigAddr {
			w.diag(ib.RecordAddr, ib.RecordAddr, RuleSideTable,
				"trace side table does not resolve the record address to this block")
		}
		if ib.OrigAddr < origLo || ib.OrigAddr >= origHi {
			w.diag(ib.RecordAddr, ib.RecordAddr, RuleSideTable,
				"original address 0x%08x outside uninstrumented text", ib.OrigAddr)
		}
		if ib.NInstr < 1 {
			w.diag(ib.RecordAddr, ib.RecordAddr, RuleSideTable, "empty basic block in side table")
		}
		if ib.Flags&obj.BBHandTraced != 0 {
			if !w.heads[ib.RecordAddr] {
				w.diag(ib.RecordAddr, ib.RecordAddr, RuleSideTable,
					"hand-traced record address is not a block head")
			}
			continue
		}
		if !w.instrSet[ib.RecordAddr-prologueBytes] {
			w.diag(ib.RecordAddr, ib.RecordAddr, RuleSideTable,
				"record address is not the jal return of an instrumented block head")
		}
	}
	// The converse: every instrumented block must be recorded.
	for i := range w.e.Blocks {
		b := &w.e.Blocks[i]
		if b.Flags&(obj.BBNoInstrument|obj.BBHandTraced) != 0 {
			continue
		}
		w.check(RuleSideTable)
		if w.byRecord[b.Addr+prologueBytes] == nil {
			w.diag(b.Addr, b.Addr, RuleSideTable, "instrumented block missing from side table")
		}
	}
}

// block walks one instrumented basic block.
func (w *walker) block(b *obj.ExeBlock) {
	n := int(b.NInstr)
	start := (b.Addr - w.e.TextBase) / 4
	if int(start)+n > len(w.e.Text) {
		w.diag(b.Addr, b.Addr, RuleBBHead, "block extends past end of text")
		return
	}
	ws := w.e.Text[start : int(start)+n]
	ib := w.byRecord[b.Addr+prologueBytes]

	// Prologue: sw ra,124(xreg3); jal bbtrace; li zero,N.
	w.check(RuleBBHead)
	if n < 3 {
		w.diag(b.Addr, b.Addr, RuleBBHead, "block too short to hold the trace prologue")
		return
	}
	if ws[0] != isa.SW(isa.RegRA, xr3, trace.BookSavedRA) {
		w.diag(b.Addr, b.Addr, RuleBBHead, "block head does not save ra to the bookkeeping area")
	}
	if !w.jalTo(ws[1], w.bb) {
		w.diag(b.Addr+4, b.Addr, RuleBBHead, "no jal bbtrace at block head")
	}
	if v := isa.LINopValue(ws[2]); v < 0 {
		w.diag(b.Addr+8, b.Addr, RuleBBHead, "jal bbtrace delay slot is not a trace-word LINop")
	} else if ib != nil && v != 1+len(ib.Mem) {
		w.diag(b.Addr+8, b.Addr, RuleBBHead,
			"LINop trace-word count %d does not match side table (%d)", v, 1+len(ib.Mem))
	}

	// Terminator pair: the last two words, when the penultimate word
	// is a control transfer that is not itself a memtrace call.
	bodyEnd := n
	hasPair := n >= 5 && isa.HasDelaySlot(ws[n-2]) && !w.jalTo(ws[n-2], w.mt)
	if hasPair {
		bodyEnd = n - 2
	}

	memSeen := 0
	var lastMem isa.Word
	for i := 3; i < bodyEnd; {
		word := ws[i]
		addr := b.Addr + uint32(i)*4
		switch {
		case w.jalTo(word, w.mt):
			i += w.memGroup(b, ib, ws, i, bodyEnd, &memSeen, &lastMem)
		case w.jalTo(word, w.bb):
			w.diag(addr, b.Addr, RuleBBHead, "stray jal bbtrace inside block body")
			i++
		case w.bookkeeping(word):
			w.check(RuleSteal)
			i++
		default:
			w.plain(addr, b.Addr, word)
			i++
		}
	}

	if hasPair {
		term, slot := ws[n-2], ws[n-1]
		termAddr := b.Addr + uint32(n-2)*4
		w.xregCheck(termAddr, b.Addr, term)
		w.branchTarget(termAddr, b.Addr, term)

		// The original delay slot held a memory instruction exactly
		// when the side table's last reference is the block's last
		// instruction; the rewriter must then have hoisted it.
		hoisted := ib != nil && len(ib.Mem) > 0 &&
			int(ib.Mem[len(ib.Mem)-1].Index) == int(ib.NInstr)-1
		if hoisted {
			w.check(RuleHoist)
			if slot != isa.NOP {
				w.diag(termAddr+4, b.Addr, RuleHoist,
					"delay slot not cleared after hoisting its memory instruction")
			}
			if memSeen == 0 {
				w.diag(termAddr+4, b.Addr, RuleHoist,
					"no memtrace group found for the hoisted delay-slot reference")
			} else if !isa.SafeToHoist(term, lastMem) {
				w.diag(termAddr+4, b.Addr, RuleHoist,
					"hoisted memory instruction writes a register the transfer reads")
			}
		} else if isa.IsMem(slot) && !w.bookkeeping(slot) {
			w.check(RuleMemTrace)
			w.diag(termAddr+4, b.Addr, RuleMemTrace, "untraced memory instruction in delay slot")
		} else if w.bookkeeping(slot) {
			w.check(RuleSteal)
		} else {
			w.plain(termAddr+4, b.Addr, slot)
		}
	}

	if ib != nil {
		w.check(RuleMemTrace)
		if memSeen != len(ib.Mem) {
			w.diag(b.Addr, b.Addr, RuleMemTrace,
				"block traces %d memory references, side table expects %d", memSeen, len(ib.Mem))
		}
	}
}

// memGroup consumes one `jal memtrace` call sequence starting at ws[i]
// and returns the number of words consumed. The group is either
// [jal, mem] (the reference in the delay slot) or [jal, ea-nop, mem]
// (the hazard form, §3.2).
func (w *walker) memGroup(b *obj.ExeBlock, ib *obj.InstrBlock, ws []isa.Word, i, limit int, memSeen *int, lastMem *isa.Word) int {
	w.check(RuleMemTrace)
	addr := b.Addr + uint32(i)*4
	if i+1 >= limit {
		w.diag(addr, b.Addr, RuleMemTrace, "jal memtrace truncated at block end")
		return 1
	}
	next := ws[i+1]
	size := 2
	mem := next
	if isa.IsLoad(next) && isa.Defs(next) < 0 && isa.Decode(next).Rt == isa.RegZero && next>>26 != isa.OpLWC1 {
		// EA no-op in the slot; the real instruction issues after the
		// call.
		if i+2 >= limit {
			w.diag(addr, b.Addr, RuleMemTrace, "hazard-form memtrace group truncated at block end")
			return 2
		}
		mem = ws[i+2]
		size = 3
		if !isa.IsMem(mem) {
			w.diag(addr+8, b.Addr, RuleMemTrace, "EA no-op not followed by its memory instruction")
			return size
		}
		mi := isa.Decode(mem)
		if next != isa.EANop(mi.Rs, mi.Imm, isa.MemSize(mem)) {
			w.diag(addr+4, b.Addr, RuleMemTrace,
				"EA no-op base/offset/width disagrees with the displaced memory instruction")
		}
	} else {
		if !isa.IsMem(next) {
			w.diag(addr+4, b.Addr, RuleMemTrace, "jal memtrace delay slot is not a memory instruction")
			return size
		}
		mi := isa.Decode(next)
		if isa.Touches(next, isa.RegRA) || (isa.IsLoad(next) && mi.Rt == mi.Rs) {
			w.diag(addr+4, b.Addr, RuleMemTrace,
				"hazard instruction traced in delay-slot form (memtrace would decode a stale base)")
		}
	}
	w.xregCheck(addr+uint32(size-1)*4, b.Addr, mem)
	*memSeen++
	*lastMem = mem
	if ib != nil && *memSeen <= len(ib.Mem) {
		want := ib.Mem[*memSeen-1]
		if isa.IsLoad(mem) != want.Load || int8(isa.MemSize(mem)) != want.Size {
			w.diag(addr, b.Addr, RuleMemTrace,
				"traced reference %d kind/width disagrees with side table", *memSeen-1)
		}
	}
	return size
}

// bookkeeping reports whether word is part of the register-stealing
// idiom: a shadow or scratch access through xreg3, or the saved-ra
// refresh. Anything else that touches the stolen registers violates
// the steal rule.
func (w *walker) bookkeeping(word isa.Word) bool {
	i := isa.Decode(word)
	if i.Rs != xr3 {
		return false
	}
	off := int(i.Imm)
	switch i.Op {
	case isa.OpSW:
		switch off {
		case trace.BookSavedRA:
			return i.Rt == isa.RegRA
		case trace.BookTmp:
			return w.scratch[i.Rt]
		case trace.BookShadow1, trace.BookShadow2, trace.BookShadow3:
			return i.Rt == isa.RegAT
		}
	case isa.OpLW:
		switch off {
		case trace.BookTmp:
			return w.scratch[i.Rt]
		case trace.BookShadow1, trace.BookShadow2, trace.BookShadow3:
			return i.Rt == isa.RegAT || w.scratch[i.Rt]
		}
	}
	return false
}

// plain checks an ordinary rewritten instruction: no stolen-register
// references, no untraced memory access, no control transfer inside
// the block body.
func (w *walker) plain(addr, block uint32, word isa.Word) {
	w.xregCheck(addr, block, word)
	if isa.IsMem(word) {
		w.check(RuleMemTrace)
		w.diag(addr, block, RuleMemTrace, "memory instruction without a memtrace call")
	}
	if isa.HasDelaySlot(word) {
		w.check(RuleBranchTarget)
		w.diag(addr, block, RuleBranchTarget, "control transfer inside rewritten block body")
	}
}

// xregCheck flags any stolen-register reference in rewritten code.
func (w *walker) xregCheck(addr, block uint32, word isa.Word) {
	w.check(RuleSteal)
	for _, r := range [3]int{xr1, xr2, xr3} {
		if isa.Touches(word, r) {
			w.diag(addr, block, RuleSteal,
				"rewritten code references stolen register %s", isa.RegName(r))
		}
	}
}

// branchTarget checks that a block terminator's static target is a
// post-rewrite block head (register jumps are dynamic and skipped).
func (w *walker) branchTarget(addr, block uint32, term isa.Word) {
	var target uint32
	switch {
	case isa.IsBranch(term):
		target = addr + 4 + isa.SignExt16(isa.Decode(term).Imm)<<2
	case term>>26 == isa.OpJ || term>>26 == isa.OpJAL:
		target = (addr+4)&0xf0000000 | isa.Decode(term).Target<<2
	default:
		return // jr/jalr: dynamic target
	}
	w.check(RuleBranchTarget)
	if !w.heads[target] && target != w.e.TextEnd() {
		w.diag(addr, block, RuleBranchTarget,
			"transfer target 0x%08x is not a rewritten block head", target)
	}
}

func (w *walker) jalTo(word isa.Word, dst uint32) bool {
	return word>>26 == isa.OpJAL && isa.Decode(word).Target == isa.JTarget(dst)
}
