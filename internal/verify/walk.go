package verify

import (
	"fmt"

	"systrace/internal/dataflow"
	"systrace/internal/epoxie"
	"systrace/internal/isa"
	"systrace/internal/obj"
	"systrace/internal/trace"
)

const (
	xr1 = isa.XReg1
	xr2 = isa.XReg2
	xr3 = isa.XReg3
)

// prologueBytes returns the trace prologue size of a block with the
// given flags: the full compact prologue is three words (`sw ra; jal
// bbtrace; li zero,N`), the lean form drops the ra save, hand-traced
// blocks have none. The basic-block record address is the jal-return
// address, i.e. head + prologueBytes.
func prologueBytes(fl obj.BBFlags) uint32 {
	switch {
	case fl&obj.BBHandTraced != 0:
		return 0
	case fl&obj.BBLeanPrologue != 0:
		return 8
	}
	return 12
}

// walker carries the per-executable verification state.
type walker struct {
	e        *obj.Executable
	res      *Result
	bb, mt   uint32          // bbtrace / memtrace entry addresses
	mtsp     uint32          // memtrace_sp entry address (when present)
	hasSP    bool            // runtime provides memtrace_sp
	heads    map[uint32]bool // every post-rewrite block head
	instrSet map[uint32]bool // heads of instrumented blocks
	byRecord map[uint32]*obj.InstrBlock
	scratch  map[int]bool // registers the steal idiom may borrow
	// flow is the verifier's own liveness and value analysis over the
	// rewritten image (trace-runtime calls modeled transparent); nil
	// when the image is too damaged to analyze — the structural rules
	// still run.
	flow *dataflow.Facts
}

func newWalker(e *obj.Executable, bb, mt, mtsp uint32, hasSP bool) *walker {
	w := &walker{
		e:        e,
		res:      &Result{Name: e.Name, Checks: make(map[string]int)},
		bb:       bb,
		mt:       mt,
		mtsp:     mtsp,
		hasSP:    hasSP,
		heads:    make(map[uint32]bool, len(e.Blocks)),
		instrSet: make(map[uint32]bool),
		byRecord: make(map[uint32]*obj.InstrBlock, len(e.Instr.Blocks)),
		scratch:  make(map[int]bool),
	}
	for i := range e.Blocks {
		b := &e.Blocks[i]
		w.heads[b.Addr] = true
		if b.Flags&(obj.BBNoInstrument|obj.BBHandTraced) == 0 {
			w.instrSet[b.Addr] = true
		}
	}
	for _, r := range epoxie.ScratchRegs() {
		w.scratch[r] = true
	}
	return w
}

func (w *walker) check(rule string) { w.res.Checks[rule]++ }

func (w *walker) diag(addr, block uint32, rule, format string, args ...any) {
	w.res.Diags = append(w.res.Diags,
		Diag{Addr: addr, Block: block, Rule: rule, Msg: fmt.Sprintf(format, args...)})
}

// sideTable checks the static side table against the image: record
// addresses must be unique jal-return addresses of instrumented block
// heads (or hand-traced heads), original addresses must fall inside
// the uninstrumented text, and the trace parsing library's lookup
// table must resolve each record to the same entry.
func (w *walker) sideTable() {
	ii := w.e.Instr
	origLo := w.e.TextBase
	origHi := w.e.TextBase + ii.OrigTextSize
	st := trace.NewSideTable(ii.Blocks)
	for i := range ii.Blocks {
		ib := &ii.Blocks[i]
		w.check(RuleSideTable)
		if prev, dup := w.byRecord[ib.RecordAddr]; dup {
			w.diag(ib.RecordAddr, ib.RecordAddr, RuleSideTable,
				"duplicate record address (also maps original block 0x%08x)", prev.OrigAddr)
			continue
		}
		w.byRecord[ib.RecordAddr] = ib
		if got := st.Lookup(ib.RecordAddr); got == nil || got.OrigAddr != ib.OrigAddr {
			w.diag(ib.RecordAddr, ib.RecordAddr, RuleSideTable,
				"trace side table does not resolve the record address to this block")
		}
		if ib.OrigAddr < origLo || ib.OrigAddr >= origHi {
			w.diag(ib.RecordAddr, ib.RecordAddr, RuleSideTable,
				"original address 0x%08x outside uninstrumented text", ib.OrigAddr)
		}
		if ib.NInstr < 1 {
			w.diag(ib.RecordAddr, ib.RecordAddr, RuleSideTable, "empty basic block in side table")
		}
		if ib.Flags&obj.BBHandTraced != 0 {
			if !w.heads[ib.RecordAddr] {
				w.diag(ib.RecordAddr, ib.RecordAddr, RuleSideTable,
					"hand-traced record address is not a block head")
			}
			continue
		}
		if !w.instrSet[ib.RecordAddr-prologueBytes(ib.Flags)] {
			w.diag(ib.RecordAddr, ib.RecordAddr, RuleSideTable,
				"record address is not the jal return of an instrumented block head")
		}
	}
	// The converse: every instrumented block must be recorded.
	for i := range w.e.Blocks {
		b := &w.e.Blocks[i]
		if b.Flags&(obj.BBNoInstrument|obj.BBHandTraced) != 0 {
			continue
		}
		w.check(RuleSideTable)
		if w.byRecord[b.Addr+prologueBytes(b.Flags)] == nil {
			w.diag(b.Addr, b.Addr, RuleSideTable, "instrumented block missing from side table")
		}
	}
}

// block walks one instrumented basic block.
func (w *walker) block(b *obj.ExeBlock) {
	n := int(b.NInstr)
	start := (b.Addr - w.e.TextBase) / 4
	if int(start)+n > len(w.e.Text) {
		w.diag(b.Addr, b.Addr, RuleBBHead, "block extends past end of text")
		return
	}
	ws := w.e.Text[start : int(start)+n]
	lean := b.Flags&obj.BBLeanPrologue != 0
	pw := int(prologueBytes(b.Flags)) / 4 // prologue words: 2 lean, 3 full
	ib := w.byRecord[b.Addr+uint32(pw)*4]

	// Prologue: sw ra,124(xreg3); jal bbtrace; li zero,N — the ra save
	// elided in the lean form.
	w.check(RuleBBHead)
	if n < pw {
		w.diag(b.Addr, b.Addr, RuleBBHead, "block too short to hold the trace prologue")
		return
	}
	k := 0
	if !lean {
		if ws[0] != isa.SW(isa.RegRA, xr3, trace.BookSavedRA) {
			w.diag(b.Addr, b.Addr, RuleBBHead, "block head does not save ra to the bookkeeping area")
		}
		k = 1
	}
	if !w.jalTo(ws[k], w.bb) {
		w.diag(b.Addr+uint32(k)*4, b.Addr, RuleBBHead, "no jal bbtrace at block head")
	}
	if v := isa.LINopValue(ws[k+1]); v < 0 {
		w.diag(b.Addr+uint32(k+1)*4, b.Addr, RuleBBHead, "jal bbtrace delay slot is not a trace-word LINop")
	} else if ib != nil && v != 1+len(ib.Mem) {
		w.diag(b.Addr+uint32(k+1)*4, b.Addr, RuleBBHead,
			"LINop trace-word count %d does not match side table (%d)", v, 1+len(ib.Mem))
	}

	// A lean prologue is the rewriter asserting ra is dead on entry
	// (bbtrace and any memtrace call before the first in-block ra
	// refresh restore a stale ra). Re-derive that from the verifier's
	// own liveness and reject the block if ra is in fact live.
	if lean && w.flow != nil {
		w.check(RuleDeadReg)
		if live, ok := w.flow.LiveAt(b.Addr, pw); ok && live.Has(isa.RegRA) {
			w.diag(b.Addr, b.Addr, RuleDeadReg,
				"lean prologue but ra is live on entry (a stale bbtrace restore would be read)")
		}
	}

	// Terminator pair: the last two words, when the penultimate word
	// is a control transfer that is not itself a memtrace call.
	bodyEnd := n
	hasPair := n >= pw+2 && isa.HasDelaySlot(ws[n-2]) && !w.memJal(ws[n-2])
	if hasPair {
		bodyEnd = n - 2
	}

	// Unbracketed borrowed-scratch loads (`lw cand, shadow` with no
	// BookTmp save/restore around them) clobber cand; the rewriter may
	// only do that when cand is dead once the rewritten group ends.
	// A pending load's consumer is the first non-bookkeeping item after
	// it (further shadow loads for the same site may intervene); loads
	// still pending at body end feed the terminator's delay slot.
	type clobber struct {
		reg  int
		addr uint32
	}
	var clobbers []clobber
	resolve := func(endIdx int) {
		for _, c := range clobbers {
			w.check(RuleLiveClobber)
			if live, ok := w.flow.LiveAt(b.Addr, endIdx); ok && live.Has(c.reg) {
				w.diag(c.addr, b.Addr, RuleLiveClobber,
					"scratch %s clobbered without restore but live past the rewritten group", isa.RegName(c.reg))
			}
		}
		clobbers = clobbers[:0]
	}

	memSeen := 0
	var lastMem isa.Word
	prev := isa.NOP
	for i := pw; i < bodyEnd; {
		word := ws[i]
		addr := b.Addr + uint32(i)*4
		bookItem := false
		switch {
		case w.memJal(word):
			i += w.memGroup(b, ib, ws, i, bodyEnd, &memSeen, &lastMem)
		case w.jalTo(word, w.bb):
			w.diag(addr, b.Addr, RuleBBHead, "stray jal bbtrace inside block body")
			i++
		case w.bookkeeping(word):
			w.check(RuleSteal)
			bookItem = true
			if d := isa.Decode(word); w.flow != nil && d.Op == isa.OpLW && w.scratch[d.Rt] &&
				d.Imm != trace.BookTmp && prev != isa.SW(d.Rt, xr3, trace.BookTmp) {
				clobbers = append(clobbers, clobber{reg: d.Rt, addr: addr})
			}
			i++
		default:
			w.plain(addr, b.Addr, word)
			i++
		}
		prev = word
		if !bookItem {
			resolve(i)
		}
	}

	if hasPair {
		// Pending clobbers feed the delay slot across the terminator:
		// the terminator itself must not read them, and nothing after
		// the block may (the slot's own read is the substitute use).
		for _, c := range clobbers {
			w.check(RuleLiveClobber)
			if isa.UsesMask(ws[n-2]).Has(c.reg) {
				w.diag(c.addr, b.Addr, RuleLiveClobber,
					"scratch %s clobbered without restore but read by the terminator", isa.RegName(c.reg))
			}
		}
	}
	resolve(n)

	if hasPair {
		term, slot := ws[n-2], ws[n-1]
		termAddr := b.Addr + uint32(n-2)*4
		w.xregCheck(termAddr, b.Addr, term)
		w.branchTarget(termAddr, b.Addr, term)

		// The original delay slot held a memory instruction exactly
		// when the side table's last reference is the block's last
		// instruction; the rewriter must then have hoisted it.
		hoisted := ib != nil && len(ib.Mem) > 0 &&
			int(ib.Mem[len(ib.Mem)-1].Index) == int(ib.NInstr)-1
		if hoisted {
			w.check(RuleHoist)
			if slot != isa.NOP {
				w.diag(termAddr+4, b.Addr, RuleHoist,
					"delay slot not cleared after hoisting its memory instruction")
			}
			if memSeen == 0 {
				w.diag(termAddr+4, b.Addr, RuleHoist,
					"no memtrace group found for the hoisted delay-slot reference")
			} else if !isa.SafeToHoist(term, lastMem) {
				w.diag(termAddr+4, b.Addr, RuleHoist,
					"hoisted memory instruction writes a register the transfer reads")
			}
		} else if isa.IsMem(slot) && !w.bookkeeping(slot) {
			w.check(RuleMemTrace)
			w.diag(termAddr+4, b.Addr, RuleMemTrace, "untraced memory instruction in delay slot")
		} else if w.bookkeeping(slot) {
			w.check(RuleSteal)
		} else {
			w.plain(termAddr+4, b.Addr, slot)
		}
	}

	if ib != nil {
		w.check(RuleMemTrace)
		if memSeen != len(ib.Mem) {
			w.diag(b.Addr, b.Addr, RuleMemTrace,
				"block traces %d memory references, side table expects %d", memSeen, len(ib.Mem))
		}
	}
}

// memJal reports whether word calls one of the memory-trace entries
// (the general memtrace or the specialized memtrace_sp).
func (w *walker) memJal(word isa.Word) bool {
	return w.jalTo(word, w.mt) || (w.hasSP && w.jalTo(word, w.mtsp))
}

// memGroup consumes one memory-trace call sequence starting at ws[i]
// and returns the number of words consumed. The group is either
// [jal, mem] (the reference in the delay slot) or [jal, ea-nop, mem]
// (the hazard form, §3.2). A group routed to memtrace_sp must have sp
// as its slot base — that entry skips the 32-way dispatch and adds the
// displacement straight to the live sp.
func (w *walker) memGroup(b *obj.ExeBlock, ib *obj.InstrBlock, ws []isa.Word, i, limit int, memSeen *int, lastMem *isa.Word) int {
	w.check(RuleMemTrace)
	addr := b.Addr + uint32(i)*4
	if i+1 >= limit {
		w.diag(addr, b.Addr, RuleMemTrace, "jal memtrace truncated at block end")
		return 1
	}
	next := ws[i+1]
	size := 2
	mem := next
	if isa.IsLoad(next) && isa.Defs(next) < 0 && isa.Decode(next).Rt == isa.RegZero && next>>26 != isa.OpLWC1 {
		// EA no-op in the slot; the real instruction issues after the
		// call.
		if i+2 >= limit {
			w.diag(addr, b.Addr, RuleMemTrace, "hazard-form memtrace group truncated at block end")
			return 2
		}
		mem = ws[i+2]
		size = 3
		if !isa.IsMem(mem) {
			w.diag(addr+8, b.Addr, RuleMemTrace, "EA no-op not followed by its memory instruction")
			return size
		}
		mi := isa.Decode(mem)
		if next != isa.EANop(mi.Rs, mi.Imm, isa.MemSize(mem)) {
			w.diag(addr+4, b.Addr, RuleMemTrace,
				"EA no-op base/offset/width disagrees with the displaced memory instruction")
		}
	} else {
		if !isa.IsMem(next) {
			w.diag(addr+4, b.Addr, RuleMemTrace, "jal memtrace delay slot is not a memory instruction")
			return size
		}
		mi := isa.Decode(next)
		if isa.Touches(next, isa.RegRA) || (isa.IsLoad(next) && mi.Rt == mi.Rs) {
			w.diag(addr+4, b.Addr, RuleMemTrace,
				"hazard instruction traced in delay-slot form (memtrace would decode a stale base)")
		}
	}
	if w.hasSP && w.jalTo(ws[i], w.mtsp) {
		w.check(RuleAddrClass)
		if sb := isa.Decode(ws[i+1]).Rs; sb != isa.RegSP {
			w.diag(addr+4, b.Addr, RuleAddrClass,
				"memtrace_sp group whose slot base is %s, not sp (the runtime would add the wrong register)",
				isa.RegName(sb))
		}
	}
	w.addrClass(addr+4, b, i+1, ws[i+1], mem)
	w.xregCheck(addr+uint32(size-1)*4, b.Addr, mem)
	*memSeen++
	*lastMem = mem
	if ib != nil && *memSeen <= len(ib.Mem) {
		want := ib.Mem[*memSeen-1]
		if isa.IsLoad(mem) != want.Load || int8(isa.MemSize(mem)) != want.Size {
			w.diag(addr, b.Addr, RuleMemTrace,
				"traced reference %d kind/width disagrees with side table", *memSeen-1)
		}
	}
	return size
}

// addrClass checks a traced reference whose effective address the
// verifier's own value analysis proves constant: the address must not
// fall in the null page, a store must not target text, and the access
// must be aligned for its width. slot is the word encoding base+imm
// (the reference itself or its EA no-op) at index k of block b; mem is
// the real memory instruction.
func (w *walker) addrClass(addr uint32, b *obj.ExeBlock, k int, slot, mem isa.Word) {
	if w.flow == nil {
		return
	}
	st, ok := w.flow.ValuesAt(b.Addr, k)
	if !ok {
		return
	}
	ea := dataflow.EA(st, slot)
	if ea.Kind != dataflow.VConst {
		return
	}
	w.check(RuleAddrClass)
	a := uint32(ea.Off)
	sz := uint32(isa.MemSize(mem))
	switch {
	case a < 0x1000:
		w.diag(addr, b.Addr, RuleAddrClass,
			"traced reference through provably constant address 0x%08x in the null page", a)
	case !isa.IsLoad(mem) && a >= w.e.TextBase && a < w.e.TextEnd():
		w.diag(addr, b.Addr, RuleAddrClass,
			"traced store through provably constant address 0x%08x inside text", a)
	case sz > 1 && a%sz != 0:
		w.diag(addr, b.Addr, RuleAddrClass,
			"traced %d-byte reference through provably constant address 0x%08x is misaligned", sz, a)
	}
}

// rebases re-proves every EA strength reduction the rewriter recorded:
// the slot word at each record must encode the rebased operand, and
// the verifier's own value analysis must prove the original and
// rebased forms compute the same address at that point.
func (w *walker) rebases() {
	for _, reb := range w.e.Instr.Flow.EARebases {
		w.check(RuleRedundantEA)
		b := w.e.BlockFor(reb.Addr)
		if b == nil {
			w.diag(reb.Addr, reb.Addr, RuleRedundantEA, "rebase record points outside every block")
			continue
		}
		word := w.e.Text[(reb.Addr-w.e.TextBase)/4]
		d := isa.Decode(word)
		if !isa.IsMem(word) || d.Rs != int(reb.NewBase) || d.Imm != reb.NewImm {
			w.diag(reb.Addr, b.Addr, RuleRedundantEA,
				"slot word does not encode the recorded rebased operand %s%+d",
				isa.RegName(int(reb.NewBase)), int32(int16(reb.NewImm)))
			continue
		}
		if w.flow == nil {
			continue
		}
		st, ok := w.flow.ValuesAt(b.Addr, int(reb.Addr-b.Addr)/4)
		if !ok {
			w.diag(reb.Addr, b.Addr, RuleRedundantEA, "no value state at the rebased slot")
			continue
		}
		oldEA := st.Reg(int(reb.OrigBase)).Add(int32(int16(reb.OrigImm)))
		newEA := st.Reg(int(reb.NewBase)).Add(int32(int16(reb.NewImm)))
		if diff, ok := oldEA.Diff(newEA); !ok || diff != 0 {
			w.diag(reb.Addr, b.Addr, RuleRedundantEA,
				"cannot re-prove %s%+d == %s%+d at the rebased slot",
				isa.RegName(int(reb.OrigBase)), int32(int16(reb.OrigImm)),
				isa.RegName(int(reb.NewBase)), int32(int16(reb.NewImm)))
		}
	}
}

// bookkeeping reports whether word is part of the register-stealing
// idiom: a shadow or scratch access through xreg3, or the saved-ra
// refresh. Anything else that touches the stolen registers violates
// the steal rule.
func (w *walker) bookkeeping(word isa.Word) bool {
	i := isa.Decode(word)
	if i.Rs != xr3 {
		return false
	}
	off := int(i.Imm)
	switch i.Op {
	case isa.OpSW:
		switch off {
		case trace.BookSavedRA:
			return i.Rt == isa.RegRA
		case trace.BookTmp:
			return w.scratch[i.Rt]
		case trace.BookShadow1, trace.BookShadow2, trace.BookShadow3:
			return i.Rt == isa.RegAT
		}
	case isa.OpLW:
		switch off {
		case trace.BookTmp:
			return w.scratch[i.Rt]
		case trace.BookShadow1, trace.BookShadow2, trace.BookShadow3:
			return i.Rt == isa.RegAT || w.scratch[i.Rt]
		}
	}
	return false
}

// plain checks an ordinary rewritten instruction: no stolen-register
// references, no untraced memory access, no control transfer inside
// the block body.
func (w *walker) plain(addr, block uint32, word isa.Word) {
	w.xregCheck(addr, block, word)
	if isa.IsMem(word) {
		w.check(RuleMemTrace)
		w.diag(addr, block, RuleMemTrace, "memory instruction without a memtrace call")
	}
	if isa.HasDelaySlot(word) {
		w.check(RuleBranchTarget)
		w.diag(addr, block, RuleBranchTarget, "control transfer inside rewritten block body")
	}
}

// xregCheck flags any stolen-register reference in rewritten code.
func (w *walker) xregCheck(addr, block uint32, word isa.Word) {
	w.check(RuleSteal)
	for _, r := range [3]int{xr1, xr2, xr3} {
		if isa.Touches(word, r) {
			w.diag(addr, block, RuleSteal,
				"rewritten code references stolen register %s", isa.RegName(r))
		}
	}
}

// branchTarget checks that a block terminator's static target is a
// post-rewrite block head (register jumps are dynamic and skipped).
func (w *walker) branchTarget(addr, block uint32, term isa.Word) {
	var target uint32
	switch {
	case isa.IsBranch(term):
		target = addr + 4 + isa.SignExt16(isa.Decode(term).Imm)<<2
	case term>>26 == isa.OpJ || term>>26 == isa.OpJAL:
		target = (addr+4)&0xf0000000 | isa.Decode(term).Target<<2
	default:
		return // jr/jalr: dynamic target
	}
	w.check(RuleBranchTarget)
	if !w.heads[target] && target != w.e.TextEnd() {
		w.diag(addr, block, RuleBranchTarget,
			"transfer target 0x%08x is not a rewritten block head", target)
	}
}

func (w *walker) jalTo(word isa.Word, dst uint32) bool {
	return word>>26 == isa.OpJAL && isa.Decode(word).Target == isa.JTarget(dst)
}
