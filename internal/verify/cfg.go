package verify

import (
	"fmt"
	"sort"

	"systrace/internal/isa"
	"systrace/internal/obj"
)

// This file derives the post-rewrite static control-flow graph of an
// epoxie-instrumented image, for consumers that need to know which
// trace records may legally follow which — primarily
// internal/tracecheck's conformance pass. It reuses the same decoding
// conventions as the block walker (prologue shape, terminator-pair
// detection, static target computation) but exposes the result as a
// queryable graph instead of diagnostics.

// TermKind classifies how a recorded block transfers control.
type TermKind uint8

const (
	// TermFall: no terminator pair; execution falls into the next
	// block in address order (straight-line splits and syscall-ended
	// blocks, which resume at the next instruction after the trap).
	TermFall TermKind = iota
	// TermBranch: conditional branch; target or fallthrough.
	TermBranch
	// TermJump: unconditional j to a static target.
	TermJump
	// TermCall: jal to a static target; returns to the fallthrough.
	TermCall
	// TermCallReg: jalr; dynamic callee, returns to the fallthrough.
	TermCallReg
	// TermRet: jr ra.
	TermRet
	// TermJumpReg: jr through a non-ra register (jump tables,
	// trampolines); dynamic target.
	TermJumpReg
	// TermHalt: the block ends in a break with no delay slot;
	// execution does not continue past it in the traced image.
	TermHalt
)

func (k TermKind) String() string {
	switch k {
	case TermFall:
		return "fall"
	case TermBranch:
		return "branch"
	case TermJump:
		return "jump"
	case TermCall:
		return "call"
	case TermCallReg:
		return "call-reg"
	case TermRet:
		return "ret"
	case TermJumpReg:
		return "jump-reg"
	case TermHalt:
		return "halt"
	}
	return fmt.Sprintf("TermKind(%d)", int(k))
}

// CFGNode is one recorded basic block of the instrumented image: a
// block that emits a trace record when executed (instrumented blocks
// and hand-traced blocks; BBNoInstrument code is silent and appears
// only as edges walked by Reach).
type CFGNode struct {
	Head   uint32 // post-rewrite block head address
	Record uint32 // record address bbtrace writes (head+12, or head if hand-traced)
	Info   *obj.InstrBlock
	Term   TermKind
	Target uint32 // static target for TermBranch/TermJump/TermCall
	Next   uint32 // fallthrough: first address past the block
}

// ReachSet is the set of trace records observable next when execution
// enters silent (unrecorded) code at some address: the records of the
// first recorded blocks reachable without crossing another recorded
// block.
type ReachSet struct {
	// Top means the closure lost track (dynamic transfer inside
	// silent code, or execution left the text segment): any record
	// may follow.
	Top bool
	// MayReturn means a `jr ra` is reachable without crossing a
	// recorded block: silent code may return to its caller without
	// emitting anything.
	MayReturn bool
	// Records holds the reachable record addresses, sorted.
	Records []uint32
}

// Has reports whether rec is in the set (Top matches everything).
func (s *ReachSet) Has(rec uint32) bool {
	if s == nil {
		return false
	}
	if s.Top {
		return true
	}
	i := sort.Search(len(s.Records), func(i int) bool { return s.Records[i] >= rec })
	return i < len(s.Records) && s.Records[i] == rec
}

// CFG is the post-rewrite control-flow graph of one instrumented
// executable. Reach memoizes its closures in place, so a CFG must not
// be shared across goroutines.
type CFG struct {
	Exe *obj.Executable
	// Nodes maps post-rewrite head addresses of recorded blocks.
	Nodes map[uint32]*CFGNode
	// ByRecord maps record addresses (what the trace stream carries).
	ByRecord map[uint32]*CFGNode
	// MaxMem is the largest per-block memory-reference count in the
	// side table: an upper bound on the orphan words an interrupted
	// block can leave behind (§4.3's resynchronization "dirt").
	MaxMem int

	bb, mt, mtsp uint32
	hasSP        bool
	memo         map[uint32]*ReachSet
}

// reachCap bounds the instruction closure of one Reach query; silent
// regions are small (the tracing runtime and a few delicate handlers),
// so hitting the cap means something is wrong and the set degrades to
// Top rather than looping.
const reachCap = 16384

// NewCFG derives the recorded-block graph of an epoxie-instrumented
// image. It fails for images that cannot be interpreted at all (not
// instrumented, unknown tool, missing runtime symbols) — the same
// preconditions as Executable.
func NewCFG(e *obj.Executable) (*CFG, error) {
	if e == nil {
		return nil, fmt.Errorf("verify: nil executable")
	}
	if e.Instr == nil {
		return nil, fmt.Errorf("verify: %s is not instrumented", e.Name)
	}
	if e.Instr.Tool != "epoxie" {
		return nil, fmt.Errorf("verify: %s: unsupported instrumentation tool %q", e.Name, e.Instr.Tool)
	}
	bb, okBB := e.Symbol("bbtrace")
	mt, okMT := e.Symbol("memtrace")
	if !okBB || !okMT {
		return nil, fmt.Errorf("verify: %s: tracing runtime symbols missing (bbtrace %v, memtrace %v)",
			e.Name, okBB, okMT)
	}
	mtsp, okSP := e.Symbol("memtrace_sp")
	g := &CFG{
		Exe:      e,
		Nodes:    make(map[uint32]*CFGNode, len(e.Instr.Blocks)),
		ByRecord: make(map[uint32]*CFGNode, len(e.Instr.Blocks)),
		bb:       bb,
		mt:       mt,
		mtsp:     mtsp,
		hasSP:    okSP,
		memo:     make(map[uint32]*ReachSet),
	}
	for i := range e.Instr.Blocks {
		ib := &e.Instr.Blocks[i]
		head := ib.RecordAddr - prologueBytes(ib.Flags)
		if len(ib.Mem) > g.MaxMem {
			g.MaxMem = len(ib.Mem)
		}
		n := &CFGNode{Head: head, Record: ib.RecordAddr, Info: ib}
		g.classify(n)
		g.Nodes[head] = n
		g.ByRecord[ib.RecordAddr] = n
	}
	return g, nil
}

// classify decodes the block's terminator into Term/Target/Next.
func (g *CFG) classify(n *CFGNode) {
	e := g.Exe
	b := e.BlockFor(n.Head)
	if b == nil || b.Addr != n.Head {
		// Side table out of step with the block table; degrade to an
		// untracked transfer (verify's side-table rule reports this).
		n.Term = TermJumpReg
		return
	}
	cnt := int(b.NInstr)
	start := (b.Addr - e.TextBase) / 4
	if int(start)+cnt > len(e.Text) {
		n.Term = TermJumpReg
		return
	}
	ws := e.Text[start : int(start)+cnt]
	n.Next = b.Addr + uint32(cnt)*4

	// Terminator pair, as in the walker: the penultimate word is a
	// control transfer that is not a memtrace call. Instrumented
	// blocks need at least their prologue before the pair.
	minPair := int(prologueBytes(b.Flags))/4 + 2
	if cnt < minPair || !isa.HasDelaySlot(ws[cnt-2]) ||
		jalTarget(ws[cnt-2], g.mt) || jalTarget(ws[cnt-2], g.bb) ||
		(g.hasSP && jalTarget(ws[cnt-2], g.mtsp)) {
		// No pair. A trailing lone break never resumes in the traced
		// image; a trailing syscall resumes at the next instruction.
		if cnt > 0 {
			w := ws[cnt-1]
			if w>>26 == isa.OpSpecial && int(w&0x3f) == isa.FnBREAK {
				n.Term = TermHalt
				return
			}
		}
		n.Term = TermFall
		return
	}

	term := ws[cnt-2]
	termAddr := b.Addr + uint32(cnt-2)*4
	switch {
	case isa.IsBranch(term):
		n.Term = TermBranch
		n.Target = termAddr + 4 + isa.SignExt16(isa.Decode(term).Imm)<<2
	case term>>26 == isa.OpJ:
		n.Term = TermJump
		n.Target = (termAddr+4)&0xf0000000 | isa.Decode(term).Target<<2
	case term>>26 == isa.OpJAL:
		n.Term = TermCall
		n.Target = (termAddr+4)&0xf0000000 | isa.Decode(term).Target<<2
	default: // SPECIAL: jr / jalr
		i := isa.Decode(term)
		switch i.Funct {
		case isa.FnJALR:
			n.Term = TermCallReg
		case isa.FnJR:
			if i.Rs == isa.RegRA {
				n.Term = TermRet
			} else {
				n.Term = TermJumpReg
			}
		default:
			n.Term = TermJumpReg
		}
	}
}

// Reach computes which records may be observed next when control
// enters addr. Entering a recorded block yields exactly its record;
// entering silent code walks the instruction closure until recorded
// blocks (collected), a silent return (MayReturn), or a dynamic
// transfer (Top). Results are memoized on the CFG.
func (g *CFG) Reach(addr uint32) *ReachSet {
	if s, ok := g.memo[addr]; ok {
		return s
	}
	s := g.reach(addr)
	sort.Slice(s.Records, func(i, j int) bool { return s.Records[i] < s.Records[j] })
	g.memo[addr] = s
	return s
}

func (g *CFG) reach(start uint32) *ReachSet {
	e := g.Exe
	s := &ReachSet{}
	seen := make(map[uint32]bool)
	found := make(map[uint32]bool)
	work := []uint32{start}
	for len(work) > 0 {
		a := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[a] {
			continue
		}
		seen[a] = true
		if len(seen) > reachCap {
			s.Top = true
			break
		}
		if n := g.Nodes[a]; n != nil {
			if !found[n.Record] {
				found[n.Record] = true
				s.Records = append(s.Records, n.Record)
			}
			continue
		}
		if a < e.TextBase || a >= e.TextEnd() {
			// Left the known text (another segment, the exception
			// vectors of a different image): no static answer.
			s.Top = true
			continue
		}
		w := e.Text[(a-e.TextBase)/4]
		switch {
		case jalTarget(w, g.bb) || jalTarget(w, g.mt) || (g.hasSP && jalTarget(w, g.mtsp)):
			// A trace-runtime call in code we thought silent; give up
			// on this path rather than guess its record.
			s.Top = true
		case isa.IsBranch(w):
			work = append(work, a+4+isa.SignExt16(isa.Decode(w).Imm)<<2, a+8)
		case w>>26 == isa.OpJ:
			work = append(work, (a+4)&0xf0000000|isa.Decode(w).Target<<2)
		case w>>26 == isa.OpJAL:
			tgt := (a+4)&0xf0000000 | isa.Decode(w).Target<<2
			if n := g.Nodes[tgt]; n != nil {
				// A call into recorded code: its record is observed
				// before anything after the call can run, and recorded
				// code never returns silently — the path ends here.
				if !found[n.Record] {
					found[n.Record] = true
					s.Records = append(s.Records, n.Record)
				}
			} else {
				// Silent callee: walk it, and assume it may return.
				work = append(work, tgt, a+8)
			}
		case w>>26 == isa.OpSpecial && int(w&0x3f) == isa.FnJALR:
			s.Top = true
			work = append(work, a+8)
		case w>>26 == isa.OpSpecial && int(w&0x3f) == isa.FnJR:
			if isa.Decode(w).Rs == isa.RegRA {
				s.MayReturn = true
			} else {
				// Dynamic jump in silent code (exception return via
				// jr k0, jump tables): no static answer.
				s.Top = true
			}
		case w>>26 == isa.OpSpecial && int(w&0x3f) == isa.FnBREAK:
			// Either a halt or a trap the kernel services before
			// resuming at the next instruction; cover the resumption.
			work = append(work, a+4)
		default:
			work = append(work, a+4)
		}
	}
	return s
}

// jalTarget reports whether word is a jal to dst.
func jalTarget(word isa.Word, dst uint32) bool {
	return word>>26 == isa.OpJAL && isa.Decode(word).Target == isa.JTarget(dst)
}
