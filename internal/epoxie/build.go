package epoxie

import (
	"fmt"
	"sort"

	"systrace/internal/dataflow"
	"systrace/internal/link"
	"systrace/internal/obj"
)

// Build is the result of an instrumented link: the original executable
// (for direct measurement) and the instrumented one (for tracing),
// laid out with identical data segments so that the trace's data
// addresses match the uninstrumented program exactly (§3.2: "the
// expansion of traced text does not affect the trace addresses
// generated").
type Build struct {
	Orig  *obj.Executable
	Instr *obj.Executable
}

// BuildInstrumented links objs twice: once untouched and once through
// the rewriter with the tracing runtime appended, and attaches the
// static side table (the "lookup table in the trace parsing library",
// §3.5) to the instrumented image.
func BuildInstrumented(objs []*obj.File, lopt link.Options, cfg Config, kind RuntimeKind) (*Build, error) {
	origExe, origLay, err := link.LinkLayout(objs, lopt)
	if err != nil {
		return nil, fmt.Errorf("epoxie: original link: %w", err)
	}

	// Liveness over the original objects, before any rewriting: this is
	// what proves a register dead at an instrumentation site.
	var prog *dataflow.Program
	if !cfg.Orig && cfg.Flow != FlowOff {
		prog, err = dataflow.AnalyzeObjects(objs)
		if err != nil {
			return nil, fmt.Errorf("epoxie: dataflow: %w", err)
		}
	}

	var rews []*Rewritten
	var flow obj.FlowStats
	newObjs := make([]*obj.File, 0, len(objs)+1)
	origWords, newWords := 0, 0
	for oi, f := range objs {
		ocfg := cfg
		if prog != nil {
			ocfg.facts = prog.Object(oi)
		}
		rw, err := Rewrite(f, ocfg)
		if err != nil {
			return nil, err
		}
		rews = append(rews, rw)
		newObjs = append(newObjs, rw.File)
		origWords += rw.OrigWords
		newWords += rw.NewWords
		flow.SaveSites += rw.Flow.SaveSites
		flow.SavesElided += rw.Flow.SavesElided
		flow.Fallbacks += rw.Flow.Fallbacks
		flow.BytesSaved += rw.Flow.BytesSaved
		flow.EASites += rw.Flow.EASites
		flow.EARebased += rw.Flow.EARebased
		flow.EASpecial += rw.Flow.EASpecial
	}
	newObjs = append(newObjs, RuntimeObj(kind))

	iopt := lopt
	iopt.Traced = true
	instExe, instLay, err := link.LinkLayout(newObjs, iopt)
	if err != nil {
		return nil, fmt.Errorf("epoxie: instrumented link: %w", err)
	}
	if instExe.DataBase != origExe.DataBase {
		return nil, fmt.Errorf("epoxie: data base moved (0x%x -> 0x%x)", origExe.DataBase, instExe.DataBase)
	}

	tool := "epoxie"
	if cfg.Orig {
		tool = "epoxie-orig"
	}
	ii := &obj.InstrInfo{
		Tool:         tool,
		OrigTextSize: uint32(origWords) * 4,
		TextSize:     uint32(newWords) * 4,
	}
	for oi, rw := range rews {
		for _, m := range rw.Map {
			if m.RecordOff == NoRecord {
				continue
			}
			ii.Blocks = append(ii.Blocks, obj.InstrBlock{
				RecordAddr: lopt.TextBase + instLay.TextOff[oi] + m.RecordOff,
				OrigAddr:   lopt.TextBase + origLay.TextOff[oi] + m.OldOff,
				NInstr:     m.Orig.NInstr,
				Flags:      m.Flags,
				Mem:        m.Orig.Mem,
			})
		}
	}
	ii.Flow = flow
	if prog != nil {
		st := prog.Stats()
		ii.Flow.Blocks, ii.Flow.Funcs, ii.Flow.Passes = st.Blocks, st.Funcs, st.Passes
		ii.Flow.AddrTaken = addrTaken(objs, instExe)
		ii.Flow.EscapedText = escapedText(rews, instExe)
		// Rebase records carry object-relative slot offsets; translate
		// them to instrumented addresses for the verifier.
		for oi, rw := range rews {
			for _, reb := range rw.Flow.EARebases {
				reb.Addr += lopt.TextBase + instLay.TextOff[oi]
				ii.Flow.EARebases = append(ii.Flow.EARebases, reb)
			}
		}
	}
	instExe.Instr = ii
	return &Build{Orig: origExe, Instr: instExe}, nil
}

// addrTaken lists instrumented entry addresses of functions whose
// address escapes through a non-jump relocation in the original
// objects — the rewriter's precise view, carried through the side
// table so the verifier's own analysis agrees on which functions have
// invisible callers (computed addresses the data scan cannot see).
func addrTaken(objs []*obj.File, inst *obj.Executable) []uint32 {
	names := map[string]bool{}
	for _, f := range objs {
		note := func(rl obj.Reloc) {
			if rl.Sym >= 0 && rl.Sym < len(f.Syms) {
				names[f.Syms[rl.Sym].Name] = true
			}
		}
		for _, rl := range f.Relocs {
			if rl.Kind != obj.RelJ26 {
				note(rl)
			}
		}
		for _, rl := range f.DataRelocs {
			note(rl)
		}
	}
	var out []uint32
	for _, s := range inst.Syms {
		if s.Func && names[s.Name] {
			out = append(out, s.Off)
		}
	}
	return out
}

// escapedText lists every instrumented text address that escapes
// through a non-jump relocation in the rewritten objects — including
// interior jump-table targets (sym+addend), whose blocks the
// verifier's value analysis must poison. Addresses materialized
// through lui/ori immediate pairs never appear as literal data words,
// so the verifier's data-section scan cannot find them on its own.
// Rewritten-object addends are already remapped to the instrumented
// layout, which is what makes this resolution exact.
func escapedText(rews []*Rewritten, inst *obj.Executable) []uint32 {
	seen := map[uint32]bool{}
	add := func(f *obj.File, rl obj.Reloc) {
		if rl.Kind == obj.RelJ26 || rl.Sym < 0 || rl.Sym >= len(f.Syms) {
			return
		}
		a, ok := inst.Symbol(f.Syms[rl.Sym].Name)
		if !ok {
			return
		}
		addr := uint32(int64(a) + int64(rl.Addend))
		if addr >= inst.TextBase && addr < inst.TextEnd() {
			seen[addr] = true
		}
	}
	for _, rw := range rews {
		for _, rl := range rw.File.Relocs {
			add(rw.File, rl)
		}
		for _, rl := range rw.File.DataRelocs {
			add(rw.File, rl)
		}
	}
	out := make([]uint32, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
