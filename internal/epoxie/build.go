package epoxie

import (
	"fmt"

	"systrace/internal/link"
	"systrace/internal/obj"
)

// Build is the result of an instrumented link: the original executable
// (for direct measurement) and the instrumented one (for tracing),
// laid out with identical data segments so that the trace's data
// addresses match the uninstrumented program exactly (§3.2: "the
// expansion of traced text does not affect the trace addresses
// generated").
type Build struct {
	Orig  *obj.Executable
	Instr *obj.Executable
}

// BuildInstrumented links objs twice: once untouched and once through
// the rewriter with the tracing runtime appended, and attaches the
// static side table (the "lookup table in the trace parsing library",
// §3.5) to the instrumented image.
func BuildInstrumented(objs []*obj.File, lopt link.Options, cfg Config, kind RuntimeKind) (*Build, error) {
	origExe, origLay, err := link.LinkLayout(objs, lopt)
	if err != nil {
		return nil, fmt.Errorf("epoxie: original link: %w", err)
	}

	var rews []*Rewritten
	newObjs := make([]*obj.File, 0, len(objs)+1)
	origWords, newWords := 0, 0
	for _, f := range objs {
		rw, err := Rewrite(f, cfg)
		if err != nil {
			return nil, err
		}
		rews = append(rews, rw)
		newObjs = append(newObjs, rw.File)
		origWords += rw.OrigWords
		newWords += rw.NewWords
	}
	newObjs = append(newObjs, RuntimeObj(kind))

	iopt := lopt
	iopt.Traced = true
	instExe, instLay, err := link.LinkLayout(newObjs, iopt)
	if err != nil {
		return nil, fmt.Errorf("epoxie: instrumented link: %w", err)
	}
	if instExe.DataBase != origExe.DataBase {
		return nil, fmt.Errorf("epoxie: data base moved (0x%x -> 0x%x)", origExe.DataBase, instExe.DataBase)
	}

	tool := "epoxie"
	if cfg.Orig {
		tool = "epoxie-orig"
	}
	ii := &obj.InstrInfo{
		Tool:         tool,
		OrigTextSize: uint32(origWords) * 4,
		TextSize:     uint32(newWords) * 4,
	}
	for oi, rw := range rews {
		for _, m := range rw.Map {
			if m.RecordOff == NoRecord {
				continue
			}
			ii.Blocks = append(ii.Blocks, obj.InstrBlock{
				RecordAddr: lopt.TextBase + instLay.TextOff[oi] + m.RecordOff,
				OrigAddr:   lopt.TextBase + origLay.TextOff[oi] + m.OldOff,
				NInstr:     m.Orig.NInstr,
				Flags:      m.Orig.Flags,
				Mem:        m.Orig.Mem,
			})
		}
	}
	instExe.Instr = ii
	return &Build{Orig: origExe, Instr: instExe}, nil
}
