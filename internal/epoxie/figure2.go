package epoxie

import (
	"systrace/internal/asm"
	"systrace/internal/isa"
	"systrace/internal/link"
	"systrace/internal/obj"
)

// Figure2Output reproduces the paper's Figure 2: the fopen entry
// sequence before and after instrumentation by epoxie.
type Figure2Output struct {
	Before []string
	After  []string
}

// Figure2 instruments the paper's example code sequence
//
//	fopen:  addiu sp,sp,-24
//	        sw    ra,20(sp)
//	        sw    a0,24(sp)
//	        jal   _findiop
//	        sw    a1,28(sp)
//
// and returns the disassembly of both versions. The store of ra is the
// hazard case (it reads ra, which `jal memtrace` destroys), so it gets
// an effective-address no-op in the delay slot; the store in
// _findiop's delay slot is hoisted above the call, as in the paper.
func Figure2() Figure2Output {
	a := asm.New("figure2")
	a.Func("fopen", 0)
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, uint16(0x10000-24)))
	a.I(isa.SW(isa.RegRA, isa.RegSP, 20))
	a.I(isa.SW(isa.RegA0, isa.RegSP, 24))
	a.JalSym("_findiop")
	a.I(isa.SW(isa.RegA1, isa.RegSP, 28))
	a.Func("_findiop", asm.NoInstrument)
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f := a.MustFinish()

	lopt := link.Options{
		Name:     "figure2",
		Entry:    "fopen",
		TextBase: obj.UserTextBase,
		DataBase: obj.UserDataBase,
	}
	b, err := BuildInstrumented([]*obj.File{f}, lopt, Config{}, UserRuntime)
	if err != nil {
		panic("epoxie: Figure2 build failed: " + err.Error())
	}

	var out Figure2Output
	oaddr := b.Orig.MustSymbol("fopen")
	ob := b.Orig.BlockFor(oaddr)
	for k := int32(0); k < ob.NInstr; k++ {
		va := oaddr + uint32(k)*4
		out.Before = append(out.Before, isa.Disassemble(va, b.Orig.Text[(va-b.Orig.TextBase)/4]))
	}
	iaddr := b.Instr.MustSymbol("fopen")
	ib := b.Instr.BlockFor(iaddr)
	for k := int32(0); k < ib.NInstr; k++ {
		va := iaddr + uint32(k)*4
		w := b.Instr.Text[(va-b.Instr.TextBase)/4]
		s := isa.Disassemble(va, w)
		// Annotate the runtime calls symbolically, as the paper does.
		if w>>26 == isa.OpJAL {
			target := va&0xf0000000 | w<<2&0x0ffffffc
			switch target {
			case b.Instr.MustSymbol("bbtrace"):
				s = "jal    bbtrace"
			case b.Instr.MustSymbol("memtrace"):
				s = "jal    memtrace"
			case b.Instr.MustSymbol("memtrace_sp"):
				s = "jal    memtrace_sp"
			case b.Instr.MustSymbol("_findiop"):
				s = "jal    _findiop"
			}
		}
		out.After = append(out.After, s)
	}
	return out
}
