package epoxie

import (
	"fmt"
	"systrace/internal/isa"
	"systrace/internal/trace"
)

// Register stealing. "Epoxie operates on binaries after compilation,
// so registers reserved for tracing had to be 'stolen.' ... Uses in
// the original binary of these stolen registers are replaced with
// sequences of instructions that use a 'shadow' value for the
// register, in memory" (§3.2/3.5). The shadow slots live in the
// bookkeeping area addressed by xreg3; the assembler temporary `at`
// (never emitted by the compiler) is the primary scratch register, and
// a second scratch is borrowed — with a save/restore through the
// bookkeeping scratch slot — when an instruction reads two stolen
// registers.

func shadowOff(x int) uint16 {
	switch x {
	case xr1:
		return trace.BookShadow1
	case xr2:
		return trace.BookShadow2
	default:
		return trace.BookShadow3
	}
}

func isXReg(r int) bool { return r == xr1 || r == xr2 || r == xr3 }

// steal rewrites one instruction's stolen-register uses. It returns
// instructions to issue before and after the (possibly re-registered)
// main instruction.
func (r *rw) steal(w isa.Word) (pre []isa.Word, main isa.Word, post []isa.Word) {
	var err error
	pre, main, post, err = StealRewrite(w)
	if err != nil {
		r.fault("%v", err)
	}
	return pre, main, post
}

// scratchCandidates are the registers a StealRewrite may borrow for a
// second stolen read, in preference order.
var scratchCandidates = []int{isa.RegV1, isa.RegT9, isa.RegT8, isa.RegA3}

// ScratchRegs returns the registers StealRewrite may borrow (and save
// through the bookkeeping scratch slot). The static verifier uses this
// to recognize the stealing idiom: a bookkeeping save/restore of any
// other register is not part of it.
func ScratchRegs() []int { return append([]int(nil), scratchCandidates...) }

// StealRewrite rewrites one instruction's uses of the stolen registers
// xreg1..xreg3 against their shadow slots. It is shared with pixie,
// which steals the same registers.
func StealRewrite(w isa.Word) (pre []isa.Word, main isa.Word, post []isa.Word, err error) {
	var stolenReads []int
	for _, rr := range isa.Uses(w) {
		if isXReg(rr) {
			stolenReads = append(stolenReads, rr)
		}
	}
	wr := isa.Defs(w)
	stolenWrite := wr >= 0 && isXReg(wr)
	if len(stolenReads) == 0 && !stolenWrite {
		return nil, w, nil, nil
	}

	// Scratch assignment: first read -> at; second read -> a borrowed
	// register (saved and restored through the bookkeeping area).
	sub := map[int]int{}
	pre = nil
	post = nil
	if len(stolenReads) > 0 {
		sub[stolenReads[0]] = isa.RegAT
		pre = append(pre, isa.LW(isa.RegAT, xr3, shadowOff(stolenReads[0])))
	}
	if len(stolenReads) > 1 {
		cand := isa.FreeScratch(w, scratchCandidates)
		if cand < 0 {
			return nil, w, nil, fmt.Errorf("no scratch register available for %s", isa.Disassemble(0, w))
		}
		sub[stolenReads[1]] = cand
		pre = append(pre,
			isa.SW(cand, xr3, trace.BookTmp),
			isa.LW(cand, xr3, shadowOff(stolenReads[1])))
		post = append(post, isa.LW(cand, xr3, trace.BookTmp))
	}
	if stolenWrite {
		// The result is computed into at and written back to the
		// shadow slot. at may simultaneously serve as the replacement
		// for a read of the same register (reads complete before the
		// write takes effect within one instruction).
		sub[wr] = isa.RegAT
		// Write-back must precede the borrowed-register restore.
		post = append([]isa.Word{isa.SW(isa.RegAT, xr3, shadowOff(wr))}, post...)
	}
	remap := func(reg int) int {
		if n, ok := sub[reg]; ok {
			return n
		}
		return reg
	}
	main = isa.MapRegs(w, remap, remap)
	return pre, main, post, nil
}
