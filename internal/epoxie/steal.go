package epoxie

import (
	"fmt"
	"systrace/internal/isa"
	"systrace/internal/trace"
)

// Register stealing. "Epoxie operates on binaries after compilation,
// so registers reserved for tracing had to be 'stolen.' ... Uses in
// the original binary of these stolen registers are replaced with
// sequences of instructions that use a 'shadow' value for the
// register, in memory" (§3.2/3.5). The shadow slots live in the
// bookkeeping area addressed by xreg3; the assembler temporary `at`
// (never emitted by the compiler) is the primary scratch register, and
// a second scratch is borrowed — with a save/restore through the
// bookkeeping scratch slot — when an instruction reads two stolen
// registers.

func shadowOff(x int) uint16 {
	switch x {
	case xr1:
		return trace.BookShadow1
	case xr2:
		return trace.BookShadow2
	default:
		return trace.BookShadow3
	}
}

func isXReg(r int) bool { return r == xr1 || r == xr2 || r == xr3 }

// stealPlan describes one instruction's stolen-register rewrite.
type stealPlan struct {
	pre, post []isa.Word
	main      isa.Word
	twoRead   bool // a second stolen read needed a borrowed register
	elided    bool // the borrowed register was clobbered bracket-free (proven dead)
}

// steal rewrites one instruction's stolen-register uses at block
// instruction index k, consulting liveness for bracket elision, and
// accounts the site in the flow stats. It returns instructions to
// issue before and after the (possibly re-registered) main instruction.
func (r *rw) steal(w isa.Word, k int) (pre []isa.Word, main isa.Word, post []isa.Word) {
	live, haveLive := r.liveAt(k)
	plan, err := planSteal(w, isa.RegAT, isa.NOP, live, haveLive, r.cfg.Flow == FlowPadded)
	if err != nil {
		r.fault("%v", err)
	}
	r.account(plan)
	return plan.pre, plan.main, plan.post
}

// account tallies one steal plan in the per-object flow stats.
func (r *rw) account(p stealPlan) {
	if !p.twoRead {
		return
	}
	r.flow.SaveSites++
	switch {
	case p.elided && r.cfg.Flow == FlowPadded:
		r.flow.SavesElided++ // padded NOPs keep the layout; no bytes saved
	case p.elided:
		r.flow.SavesElided++
		r.flow.BytesSaved += 8 // the BookTmp save and restore
	default:
		r.flow.Fallbacks++
	}
}

// scratchCandidates are the registers a StealRewrite may borrow for a
// second stolen read, in preference order.
var scratchCandidates = []int{isa.RegV1, isa.RegT9, isa.RegT8, isa.RegA3}

// ScratchRegs returns the registers StealRewrite may borrow (and save
// through the bookkeeping scratch slot). The static verifier uses this
// to recognize the stealing idiom: a bookkeeping save/restore of any
// other register is not part of it.
func ScratchRegs() []int { return append([]int(nil), scratchCandidates...) }

// StealRewrite rewrites one instruction's uses of the stolen registers
// xreg1..xreg3 against their shadow slots, with no liveness facts
// (every borrowed register is saved and restored). It is shared with
// pixie, which steals the same registers.
func StealRewrite(w isa.Word) (pre []isa.Word, main isa.Word, post []isa.Word, err error) {
	plan, err := planSteal(w, isa.RegAT, isa.NOP, isa.AllRegs, false, false)
	return plan.pre, plan.main, plan.post, err
}

// planSteal plans one instruction's stolen-register rewrite.
//
//   - scratch1 substitutes the first stolen read (normally `at`; the
//     delay-slot conflict path passes a register liveness proved dead,
//     which is then clobbered without a bracket).
//   - avoid is an instruction whose registers a borrowed scratch must
//     additionally stay clear of (the terminator, when rewriting its
//     delay slot); pass isa.NOP when there is none.
//   - live/haveLive is the liveness before this instruction: a
//     candidate not in live is clobbered without the BookTmp bracket.
//   - pad replaces elided bracket words with NOPs (FlowPadded).
func planSteal(w isa.Word, scratch1 int, avoid isa.Word, live isa.RegSet, haveLive, pad bool) (stealPlan, error) {
	var stolenReads []int
	for _, rr := range isa.Uses(w) {
		if isXReg(rr) {
			stolenReads = append(stolenReads, rr)
		}
	}
	wr := isa.Defs(w)
	stolenWrite := wr >= 0 && isXReg(wr)
	p := stealPlan{main: w}
	if len(stolenReads) == 0 && !stolenWrite {
		return p, nil
	}

	// Scratch assignment: first read -> scratch1; second read -> a
	// borrowed register, bracketed through the bookkeeping area unless
	// liveness proves it dead here.
	sub := map[int]int{}
	if len(stolenReads) > 0 {
		sub[stolenReads[0]] = scratch1
		p.pre = append(p.pre, isa.LW(scratch1, xr3, shadowOff(stolenReads[0])))
	}
	if len(stolenReads) > 1 {
		p.twoRead = true
		cand := -1
		if haveLive {
			for _, c := range scratchCandidates {
				if c != scratch1 && !isa.Touches(w, c) && !isa.Touches(avoid, c) && !live.Has(c) {
					cand, p.elided = c, true
					break
				}
			}
		}
		if cand < 0 {
			for _, c := range scratchCandidates {
				if c != scratch1 && !isa.Touches(w, c) && !isa.Touches(avoid, c) {
					cand = c
					break
				}
			}
		}
		if cand < 0 {
			return p, fmt.Errorf("no scratch register available for %s", isa.Disassemble(0, w))
		}
		sub[stolenReads[1]] = cand
		switch {
		case p.elided && pad:
			p.pre = append(p.pre, isa.NOP, isa.LW(cand, xr3, shadowOff(stolenReads[1])))
			p.post = append(p.post, isa.NOP)
		case p.elided:
			p.pre = append(p.pre, isa.LW(cand, xr3, shadowOff(stolenReads[1])))
		default:
			p.pre = append(p.pre,
				isa.SW(cand, xr3, trace.BookTmp),
				isa.LW(cand, xr3, shadowOff(stolenReads[1])))
			p.post = append(p.post, isa.LW(cand, xr3, trace.BookTmp))
		}
	}
	if stolenWrite {
		// The result is computed into at and written back to the
		// shadow slot. at may simultaneously serve as the replacement
		// for a read of the same register (reads complete before the
		// write takes effect within one instruction).
		sub[wr] = isa.RegAT
		// Write-back must precede the borrowed-register restore.
		p.post = append([]isa.Word{isa.SW(isa.RegAT, xr3, shadowOff(wr))}, p.post...)
	}
	remap := func(reg int) int {
		if n, ok := sub[reg]; ok {
			return n
		}
		return reg
	}
	p.main = isa.MapRegs(w, remap, remap)
	return p, nil
}
