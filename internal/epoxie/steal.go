package epoxie

import (
	"fmt"
	"systrace/internal/isa"
	"systrace/internal/trace"
)

// Register stealing. "Epoxie operates on binaries after compilation,
// so registers reserved for tracing had to be 'stolen.' ... Uses in
// the original binary of these stolen registers are replaced with
// sequences of instructions that use a 'shadow' value for the
// register, in memory" (§3.2/3.5). The shadow slots live in the
// bookkeeping area addressed by xreg3; the assembler temporary `at`
// (never emitted by the compiler) is the primary scratch register, and
// a second scratch is borrowed — with a save/restore through the
// bookkeeping scratch slot — when an instruction reads two stolen
// registers.

func shadowOff(x int) uint16 {
	switch x {
	case xr1:
		return trace.BookShadow1
	case xr2:
		return trace.BookShadow2
	default:
		return trace.BookShadow3
	}
}

func isXReg(r int) bool { return r == xr1 || r == xr2 || r == xr3 }

// steal rewrites one instruction's stolen-register uses. It returns
// instructions to issue before and after the (possibly re-registered)
// main instruction.
func (r *rw) steal(w isa.Word) (pre []isa.Word, main isa.Word, post []isa.Word) {
	var err error
	pre, main, post, err = StealRewrite(w)
	if err != nil {
		r.fault("%v", err)
	}
	return pre, main, post
}

// StealRewrite rewrites one instruction's uses of the stolen registers
// xreg1..xreg3 against their shadow slots. It is shared with pixie,
// which steals the same registers.
func StealRewrite(w isa.Word) (pre []isa.Word, main isa.Word, post []isa.Word, err error) {
	var stolenReads []int
	for _, rr := range isa.Reads(w) {
		if isXReg(rr) {
			stolenReads = append(stolenReads, rr)
		}
	}
	wr := isa.Writes(w)
	stolenWrite := wr >= 0 && isXReg(wr)
	if len(stolenReads) == 0 && !stolenWrite {
		return nil, w, nil, nil
	}

	// Scratch assignment: first read -> at; second read -> a borrowed
	// register (saved and restored through the bookkeeping area).
	sub := map[int]int{}
	pre = nil
	post = nil
	if len(stolenReads) > 0 {
		sub[stolenReads[0]] = isa.RegAT
		pre = append(pre, isa.LW(isa.RegAT, xr3, shadowOff(stolenReads[0])))
	}
	if len(stolenReads) > 1 {
		cand := pickScratch(w)
		if cand < 0 {
			return nil, w, nil, fmt.Errorf("no scratch register available for %s", isa.Disassemble(0, w))
		}
		sub[stolenReads[1]] = cand
		pre = append(pre,
			isa.SW(cand, xr3, trace.BookTmp),
			isa.LW(cand, xr3, shadowOff(stolenReads[1])))
		post = append(post, isa.LW(cand, xr3, trace.BookTmp))
	}
	if stolenWrite {
		// The result is computed into at and written back to the
		// shadow slot. at may simultaneously serve as the replacement
		// for a read of the same register (reads complete before the
		// write takes effect within one instruction).
		sub[wr] = isa.RegAT
		// Write-back must precede the borrowed-register restore.
		post = append([]isa.Word{isa.SW(isa.RegAT, xr3, shadowOff(wr))}, post...)
	}
	main = substituteRegs(w, sub, wr)
	return pre, main, post, nil
}

// pickScratch chooses a register not referenced by w for the second
// stolen read.
func pickScratch(w isa.Word) int {
	used := map[int]bool{isa.RegAT: true}
	for _, rr := range isa.Reads(w) {
		used[rr] = true
	}
	if wr := isa.Writes(w); wr >= 0 {
		used[wr] = true
	}
	for _, cand := range []int{isa.RegV1, isa.RegT9, isa.RegT8, isa.RegA3} {
		if !used[cand] {
			return cand
		}
	}
	return -1
}

// substituteRegs replaces register fields of w per sub; writeReg
// identifies the written register (so rt is substituted with the read
// mapping for stores but the write mapping for loads).
func substituteRegs(w isa.Word, sub map[int]int, writeReg int) isa.Word {
	i := isa.Decode(w)
	mapRead := func(reg int) int {
		if n, ok := sub[reg]; ok && reg != writeReg {
			return n
		}
		if n, ok := sub[reg]; ok {
			// Register is both read and written; both map to at.
			return n
		}
		return reg
	}
	mapWrite := func(reg int) int {
		if n, ok := sub[reg]; ok {
			return n
		}
		return reg
	}

	switch i.Op {
	case isa.OpSpecial:
		switch i.Funct {
		case isa.FnJR:
			i.Rs = mapRead(i.Rs)
		case isa.FnJALR:
			i.Rs = mapRead(i.Rs)
			i.Rd = mapWrite(i.Rd)
		case isa.FnSLL, isa.FnSRL, isa.FnSRA:
			i.Rt = mapRead(i.Rt)
			i.Rd = mapWrite(i.Rd)
		case isa.FnMFHI, isa.FnMFLO:
			i.Rd = mapWrite(i.Rd)
		case isa.FnMTHI, isa.FnMTLO:
			i.Rs = mapRead(i.Rs)
		case isa.FnMULT, isa.FnMULTU, isa.FnDIV, isa.FnDIVU:
			i.Rs = mapRead(i.Rs)
			i.Rt = mapRead(i.Rt)
		default:
			i.Rs = mapRead(i.Rs)
			i.Rt = mapRead(i.Rt)
			i.Rd = mapWrite(i.Rd)
		}
	case isa.OpRegImm, isa.OpBLEZ, isa.OpBGTZ:
		i.Rs = mapRead(i.Rs)
	case isa.OpBEQ, isa.OpBNE:
		i.Rs = mapRead(i.Rs)
		i.Rt = mapRead(i.Rt)
	case isa.OpADDIU, isa.OpSLTI, isa.OpSLTIU, isa.OpANDI, isa.OpORI, isa.OpXORI:
		i.Rs = mapRead(i.Rs)
		i.Rt = mapWrite(i.Rt)
	case isa.OpLUI:
		i.Rt = mapWrite(i.Rt)
	case isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU:
		i.Rs = mapRead(i.Rs)
		i.Rt = mapWrite(i.Rt)
	case isa.OpSB, isa.OpSH, isa.OpSW:
		i.Rs = mapRead(i.Rs)
		i.Rt = mapRead(i.Rt)
	case isa.OpLWC1, isa.OpSWC1:
		i.Rs = mapRead(i.Rs)
	case isa.OpCOP0:
		if uint32(i.Rs) == isa.Cop0MT {
			i.Rt = mapRead(i.Rt)
		} else if uint32(i.Rs) == isa.Cop0MF {
			i.Rt = mapWrite(i.Rt)
		}
	case isa.OpCOP1:
		if uint32(i.Rs) == isa.Cop1MT {
			i.Rt = mapRead(i.Rt)
		} else if uint32(i.Rs) == isa.Cop1MF {
			i.Rt = mapWrite(i.Rt)
		}
	}
	return i.Encode()
}
