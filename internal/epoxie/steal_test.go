package epoxie_test

import (
	"testing"

	"systrace/internal/asm"
	"systrace/internal/epoxie"
	"systrace/internal/isa"
	"systrace/internal/link"
	"systrace/internal/obj"
	"systrace/internal/sim"
	"systrace/internal/trace"
)

func TestStealRewriteForms(t *testing.T) {
	cases := []struct {
		name string
		w    isa.Word
		pre  int // expected pre instructions
		post int
	}{
		{"no xregs", isa.ADDU(isa.RegT0, isa.RegT1, isa.RegT2), 0, 0},
		{"one read", isa.ADDU(isa.RegT0, isa.XReg1, isa.RegT2), 1, 0},
		{"two reads", isa.ADDU(isa.RegT0, isa.XReg1, isa.XReg2), 3, 1},
		{"write", isa.ADDIU(isa.XReg1, isa.RegT0, 4), 0, 1},
		{"read+write same", isa.ADDIU(isa.XReg1, isa.XReg1, 4), 1, 1},
		{"read+write different", isa.ADDU(isa.XReg2, isa.XReg1, isa.RegT0), 1, 1},
		{"branch on xreg", isa.BEQ(isa.XReg1, isa.RegZero, 4), 1, 0},
		{"store xreg value", isa.SW(isa.XReg1, isa.RegSP, 8), 1, 0},
		{"load into xreg", isa.LW(isa.XReg3, isa.RegSP, 8), 0, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			pre, main, post, err := epoxie.StealRewrite(c.w)
			if err != nil {
				t.Fatal(err)
			}
			if len(pre) != c.pre || len(post) != c.post {
				t.Fatalf("pre=%d post=%d want %d/%d (main %s)",
					len(pre), len(post), c.pre, c.post, isa.Disassemble(0, main))
			}
			// The rewritten main instruction must not reference xregs.
			for _, r := range isa.Uses(main) {
				if r == isa.XReg1 || r == isa.XReg2 || r == isa.XReg3 {
					t.Errorf("main still reads xreg: %s", isa.Disassemble(0, main))
				}
			}
			if w := isa.Defs(main); w == isa.XReg1 || w == isa.XReg2 || w == isa.XReg3 {
				t.Errorf("main still writes xreg: %s", isa.Disassemble(0, main))
			}
		})
	}
}

// TestStealSemantics runs hand-written code that uses the stolen
// registers through instrumentation and checks the shadowed values
// behave like the real registers.
func TestStealSemantics(t *testing.T) {
	a := asm.New("stealprog")
	a.Func("main", 0)
	// Use xreg1/xreg2 as ordinary computation registers.
	a.LI(isa.XReg1, 40)
	a.LI(isa.XReg2, 2)
	a.I(isa.ADDU(isa.XReg1, isa.XReg1, isa.XReg2)) // 42
	a.I(isa.SLL(isa.XReg2, isa.XReg1, 1))          // 84
	a.I(isa.ADDU(isa.RegV0, isa.XReg1, isa.XReg2)) // 126
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// The shadow slots must start with the right values; the traced
	// start stub zeroes nothing, so initialize shadows explicitly by
	// running the uninstrumented version first as a control.
	b, err := epoxie.BuildInstrumented(
		[]*obj.File{sim.TracedStartObj(), f},
		bareLink("steal"), epoxie.Config{}, epoxie.BareRuntime)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := sim.RunResult(b.Orig, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 126 {
		t.Fatalf("control run got %d", v)
	}
	vi, _, err := sim.RunResult(b.Instr, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if vi != 126 {
		t.Fatalf("instrumented run got %d (register stealing broke semantics)", vi)
	}
}

// TestBusyFlagProtocol: the runtime raises and clears the bookkeeping
// busy flag around every buffer update.
func TestBusyFlagProtocol(t *testing.T) {
	rt := epoxie.RuntimeObj(epoxie.UserRuntime)
	var sets, clears int
	for _, w := range rt.Text {
		i := isa.Decode(w)
		if i.Op == isa.OpSW && i.Rs == isa.XReg3 && int16(i.Imm) == trace.BookBusy {
			if i.Rt == isa.RegZero {
				clears++
			} else {
				sets++
			}
		}
	}
	if sets < 2 || clears < 3 {
		t.Errorf("busy protocol incomplete: %d sets, %d clears", sets, clears)
	}
}

func bareLink(name string) link.Options {
	return link.Options{
		Name:     name,
		TextBase: sim.BareTextBase,
		DataBase: sim.BareDataBase,
	}
}
