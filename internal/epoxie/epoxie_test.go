package epoxie_test

import (
	"testing"

	"systrace/internal/asm"
	"systrace/internal/cpu"
	"systrace/internal/dataflow"
	"systrace/internal/epoxie"
	"systrace/internal/isa"
	"systrace/internal/link"
	m "systrace/internal/mahler"
	"systrace/internal/obj"
	"systrace/internal/sim"
	"systrace/internal/trace"
	"systrace/internal/userland"
	"systrace/internal/verify"
	"systrace/internal/workload"
)

// refObserver reconstructs the reference event stream by watching the
// uninstrumented program execute on the interpreter — the paper's
// validation method: "comparing epoxie trace for deterministic user
// programs to trace from a CPU simulator" (§4.3).
type refObserver struct {
	ranges   []addrRange
	events   []trace.Event
	inRegion bool
}

type addrRange struct{ lo, hi uint32 }

func newRefObserver(e *obj.Executable) *refObserver {
	o := &refObserver{}
	for _, b := range e.Blocks {
		if b.Flags&(obj.BBNoInstrument|obj.BBHandTraced) == 0 {
			o.ranges = append(o.ranges, addrRange{b.Addr, b.Addr + uint32(b.NInstr)*4})
		}
	}
	return o
}

func (o *refObserver) within(va uint32) bool {
	for _, r := range o.ranges {
		if va >= r.lo && va < r.hi {
			return true
		}
	}
	return false
}

func (o *refObserver) Fetch(va, pa uint32, kernel, cached bool) {
	o.inRegion = o.within(va)
	if o.inRegion {
		o.events = append(o.events, trace.Event{Kind: trace.EvIFetch, Addr: va, Size: 4})
	}
}

func (o *refObserver) Load(va, pa uint32, size int, kernel, cached bool) {
	if o.inRegion {
		o.events = append(o.events, trace.Event{Kind: trace.EvLoad, Addr: va, Size: int8(size)})
	}
}

func (o *refObserver) Store(va, pa uint32, size int, kernel, cached bool) {
	if o.inRegion {
		o.events = append(o.events, trace.Event{Kind: trace.EvStore, Addr: va, Size: int8(size)})
	}
}

func (o *refObserver) Exception(code int, vector uint32) {}
func (o *refObserver) FPOp(latency int)                  {}

// buildPair compiles and links a module both ways.
func buildPair(t *testing.T, mod *m.Module, cfg epoxie.Config) *epoxie.Build {
	t.Helper()
	o, err := mod.Compile(m.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	objs := []*obj.File{sim.TracedStartObj(), o}
	b, err := epoxie.BuildInstrumented(objs, link.Options{
		Name:     mod.Name,
		TextBase: sim.BareTextBase,
		DataBase: sim.BareDataBase,
	}, cfg, epoxie.BareRuntime)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	return b
}

// checkTrace runs both images and compares the parsed epoxie trace
// against the interpreter reference, event for event.
func checkTrace(t *testing.T, mod *m.Module, cfg epoxie.Config) (origV, instV uint32) {
	t.Helper()
	return checkBuildTrace(t, buildPair(t, mod, cfg))
}

// checkBuildTrace runs both images of a finished build and compares the
// parsed epoxie trace against the interpreter reference, event for
// event.
func checkBuildTrace(t *testing.T, b *epoxie.Build) (origV, instV uint32) {
	t.Helper()

	// Reference: uninstrumented run under the observer.
	mach := sim.NewBareMachine(b.Orig)
	ref := newRefObserver(b.Orig)
	mach.CPU.Obs = ref
	if err := mach.Run(100_000_000); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	origV = mach.CPU.GPR[2]

	// Traced run.
	tm := sim.NewBareMachine(b.Instr)
	if err := tm.Run(400_000_000); err != nil {
		t.Fatalf("traced run: %v", err)
	}
	instV = tm.CPU.GPR[2]
	if origV != instV {
		t.Fatalf("instrumentation changed program behavior: orig v0=0x%x traced v0=0x%x", origV, instV)
	}

	words := sim.TraceWords(tm)
	if len(words) == 0 {
		t.Fatal("traced run produced no trace")
	}
	table := trace.NewSideTable(b.Instr.Instr.Blocks)
	p := trace.NewParser(nil)
	p.AddProcess(0, table)
	events, err := p.Parse(words, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}

	if len(events) != len(ref.events) {
		t.Fatalf("event count: trace %d, simulator %d", len(events), len(ref.events))
	}
	for i := range events {
		g, w := events[i], ref.events[i]
		if g.Kind != w.Kind || g.Addr != w.Addr || g.Size != w.Size {
			t.Fatalf("event %d: trace %v@0x%08x/%d, simulator %v@0x%08x/%d",
				i, g.Kind, g.Addr, g.Size, w.Kind, w.Addr, w.Size)
		}
	}
	return origV, instV
}

func TestTraceMatchesSimulatorLoops(t *testing.T) {
	mod := m.NewModule("loops")
	mod.Global("arr", 256)
	f := mod.Func("main", m.TInt)
	// Enough locals to pin into s5..s7 so register stealing is
	// exercised on real code.
	f.Locals("a", "b", "c", "d", "e", "g", "h", "i", "sum")
	f.Code(func(bl *m.Block) {
		bl.Assign("sum", m.I(0))
		bl.For("i", m.I(0), m.I(64), func(bl *m.Block) {
			bl.StoreW(m.Add(m.Addr("arr", 0), m.Mul(m.V("i"), m.I(4))), m.Mul(m.V("i"), m.I(3)))
		})
		bl.For("i", m.I(0), m.I(64), func(bl *m.Block) {
			bl.Assign("sum", m.Add(m.V("sum"), m.LoadW(m.Add(m.Addr("arr", 0), m.Mul(m.V("i"), m.I(4))))))
		})
		bl.Return(m.V("sum"))
	})
	if v, _ := checkTrace(t, mod, epoxie.Config{}); v != 6048 {
		t.Errorf("result %d want 6048", v)
	}
}

func TestTraceMatchesSimulatorCalls(t *testing.T) {
	mod := m.NewModule("calls")
	fib := mod.Func("fib", m.TInt)
	fib.Param("n", m.TInt)
	fib.Code(func(bl *m.Block) {
		bl.If(m.Lt(m.V("n"), m.I(2)), func(bl *m.Block) { bl.Return(m.V("n")) }, nil)
		bl.Return(m.Add(m.Call("fib", m.Sub(m.V("n"), m.I(1))), m.Call("fib", m.Sub(m.V("n"), m.I(2)))))
	})
	f := mod.Func("main", m.TInt)
	f.Code(func(bl *m.Block) { bl.Return(m.Call("fib", m.I(10))) })
	if v, _ := checkTrace(t, mod, epoxie.Config{}); v != 55 {
		t.Errorf("fib(10) = %d want 55", v)
	}
}

func TestTraceMatchesSimulatorSubword(t *testing.T) {
	mod := m.NewModule("subword")
	mod.Global("buf", 64)
	f := mod.Func("main", m.TInt)
	f.Locals("i", "sum")
	f.Code(func(bl *m.Block) {
		bl.For("i", m.I(0), m.I(32), func(bl *m.Block) {
			bl.StoreB(m.Add(m.Addr("buf", 0), m.V("i")), m.Mul(m.V("i"), m.I(7)))
		})
		bl.Assign("sum", m.I(0))
		bl.For("i", m.I(0), m.I(16), func(bl *m.Block) {
			bl.Assign("sum", m.Add(m.V("sum"),
				m.Load(m.Add(m.Addr("buf", 0), m.Mul(m.V("i"), m.I(2))), 2, false)))
		})
		bl.Return(m.V("sum"))
	})
	checkTrace(t, mod, epoxie.Config{})
}

func TestTraceMatchesSimulatorFloat(t *testing.T) {
	mod := m.NewModule("fptrace")
	mod.Global("vec", 128)
	f := mod.Func("main", m.TInt)
	f.Locals("i")
	f.FLocals("acc")
	f.Code(func(bl *m.Block) {
		bl.For("i", m.I(0), m.I(16), func(bl *m.Block) {
			bl.StoreF(m.Add(m.Addr("vec", 0), m.Mul(m.V("i"), m.I(8))),
				m.FMul(m.ToFloat(m.V("i")), m.F(1.5)))
		})
		bl.Assign("acc", m.F(0))
		bl.For("i", m.I(0), m.I(16), func(bl *m.Block) {
			bl.Assign("acc", m.FAdd(m.FV("acc"),
				m.LoadF(m.Add(m.Addr("vec", 0), m.Mul(m.V("i"), m.I(8))))))
		})
		bl.Return(m.ToInt(m.FV("acc"))) // 1.5 * 120 = 180
	})
	if v, _ := checkTrace(t, mod, epoxie.Config{}); v != 180 {
		t.Errorf("got %d want 180", v)
	}
}

func TestTraceMatchesSimulatorFuncPtr(t *testing.T) {
	mod := m.NewModule("fptr")
	inc := mod.Func("inc", m.TInt)
	inc.Param("x", m.TInt)
	inc.Code(func(bl *m.Block) { bl.Return(m.Add(m.V("x"), m.I(1))) })
	dbl := mod.Func("dbl", m.TInt)
	dbl.Param("x", m.TInt)
	dbl.Code(func(bl *m.Block) { bl.Return(m.Mul(m.V("x"), m.I(2))) })
	mod.DataAddrs("ops", []string{"inc", "dbl"})
	f := mod.Func("main", m.TInt)
	f.Locals("i", "acc")
	f.Code(func(bl *m.Block) {
		bl.Assign("acc", m.I(3))
		bl.For("i", m.I(0), m.I(8), func(bl *m.Block) {
			bl.Assign("acc", m.CallVia(
				m.LoadW(m.Add(m.Addr("ops", 0), m.Mul(m.And(m.V("i"), m.I(1)), m.I(4)))),
				m.V("acc")))
		})
		bl.Return(m.V("acc"))
	})
	// ((((3+1)*2+1)*2+1)*2+1)*2 = inc,dbl ×4: 3→4→8→9→18→19→38→39→78
	if v, _ := checkTrace(t, mod, epoxie.Config{}); v != 78 {
		t.Errorf("got %d want 78", v)
	}
}

func TestTraceMatchesSimulatorOrigMode(t *testing.T) {
	mod := m.NewModule("origmode")
	mod.Global("a", 64)
	f := mod.Func("main", m.TInt)
	f.Locals("i", "s")
	f.Code(func(bl *m.Block) {
		bl.Assign("s", m.I(0))
		bl.For("i", m.I(0), m.I(10), func(bl *m.Block) {
			bl.StoreW(m.Add(m.Addr("a", 0), m.Mul(m.V("i"), m.I(4))), m.V("i"))
			bl.Assign("s", m.Add(m.V("s"), m.LoadW(m.Add(m.Addr("a", 0), m.Mul(m.V("i"), m.I(4))))))
		})
		bl.Return(m.V("s"))
	})
	if v, _ := checkTrace(t, mod, epoxie.Config{Orig: true}); v != 45 {
		t.Errorf("got %d want 45", v)
	}
}

// TestTextGrowth verifies the §3.2 growth bands: the modified epoxie
// stays under ~2.5x, the original style lands in 4-6x.
func TestTextGrowth(t *testing.T) {
	mod := growthWorkload()
	b := buildPair(t, mod, epoxie.Config{})
	g := b.Instr.Instr.GrowthFactor()
	if g < 1.5 || g > 2.6 {
		t.Errorf("modified epoxie growth %.2f, want ~1.9-2.3", g)
	}

	mod2 := growthWorkload()
	b2 := buildPair(t, mod2, epoxie.Config{Orig: true})
	g2 := b2.Instr.Instr.GrowthFactor()
	if g2 < 3.4 || g2 > 6.5 {
		t.Errorf("original epoxie growth %.2f, want ~4-6", g2)
	}
	if g2 <= g {
		t.Errorf("original mode (%.2f) should be larger than modified (%.2f)", g2, g)
	}
}

func growthWorkload() *m.Module {
	mod := m.NewModule("growth")
	mod.Global("data", 4096)
	f := mod.Func("main", m.TInt)
	f.Locals("i", "j", "s")
	f.Code(func(bl *m.Block) {
		bl.Assign("s", m.I(0))
		bl.For("i", m.I(0), m.I(8), func(bl *m.Block) {
			bl.For("j", m.I(0), m.I(8), func(bl *m.Block) {
				bl.StoreW(m.Add(m.Addr("data", 0), m.Mul(m.Add(m.Mul(m.V("i"), m.I(8)), m.V("j")), m.I(4))), m.V("j"))
				bl.Assign("s", m.Add(m.V("s"), m.V("j")))
			})
		})
		bl.Return(m.V("s"))
	})
	return mod
}

// TestDefensiveTracing injects corruption into a valid trace and
// checks the redundancy checks catch it (§4.3).
func TestDefensiveTracing(t *testing.T) {
	mod := m.NewModule("defense")
	mod.Global("a", 64)
	f := mod.Func("main", m.TInt)
	f.Locals("i")
	f.Code(func(bl *m.Block) {
		bl.For("i", m.I(0), m.I(8), func(bl *m.Block) {
			bl.StoreW(m.Add(m.Addr("a", 0), m.Mul(m.V("i"), m.I(4))), m.V("i"))
		})
		bl.Return(m.I(0))
	})
	b := buildPair(t, mod, epoxie.Config{})
	tm := sim.NewBareMachine(b.Instr)
	if err := tm.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	words := sim.TraceWords(tm)
	table := trace.NewSideTable(b.Instr.Instr.Blocks)

	table.SetTextRange(b.Orig.TextBase, b.Orig.TextEnd())
	parseAll := func(ws []uint32) error {
		p := trace.NewParser(nil)
		p.AddProcess(0, table)
		if _, err := p.Parse(ws, nil); err != nil {
			return err
		}
		return p.Finish()
	}
	if err := parseAll(words); err != nil {
		t.Fatalf("clean trace rejected: %v", err)
	}

	// Classify each word (record vs memory reference) from the clean
	// parse so corruptions can be targeted.
	isRecord := make([]bool, len(words))
	{
		pending := 0
		for i, w := range words {
			if pending > 0 {
				pending--
				continue
			}
			b := table.Lookup(w)
			if b == nil {
				t.Fatalf("clean trace word %d unparseable", i)
			}
			isRecord[i] = true
			pending = len(b.Mem)
		}
	}

	// Overwriting any record with a non-record value must be caught.
	for i := range words {
		if !isRecord[i] {
			continue
		}
		ovr := append([]uint32(nil), words...)
		ovr[i] = 0x12345678
		if parseAll(ovr) == nil {
			t.Fatalf("overwritten record at %d accepted", i)
		}
	}

	// Dropping memory-reference words: the stream slips and is caught
	// when a data address lands where a record must be, a record
	// address lands where a store effective address must be, or the
	// final block ends incomplete. A slip absorbed entirely by load
	// addresses can escape — "a very high probability" (§4.3), not
	// certainty — so require a high detection rate, not perfection.
	detected, total := 0, 0
	for i := range words {
		if isRecord[i] {
			continue
		}
		del := append([]uint32(nil), words[:i]...)
		del = append(del, words[i+1:]...)
		total++
		if parseAll(del) != nil {
			detected++
		}
	}
	if detected*100 < total*90 {
		t.Errorf("dropped-reference detection rate %d/%d, want >= 90%%", detected, total)
	}

	// Dropping records: detectable unless the block generated no
	// memory references (a one-word entry vanishing leaves a
	// perfectly consistent stream — "detected with a very high
	// probability", §4.3, not certainty). Require detection for all
	// blocks that have memory references.
	for i := range words {
		if !isRecord[i] {
			continue
		}
		if b := table.Lookup(words[i]); len(b.Mem) == 0 {
			continue
		}
		del := append([]uint32(nil), words[:i]...)
		del = append(del, words[i+1:]...)
		if parseAll(del) == nil {
			t.Fatalf("dropped record (with refs) at %d accepted", i)
		}
	}
}

// TestFigure2 checks that instrumenting the paper's fopen-like shape
// produces the expected structure: prologue + memtrace per memory
// instruction, with the hazard case using an EA no-op.
func TestFigure2(t *testing.T) {
	out := epoxie.Figure2()
	if len(out.Before) == 0 || len(out.After) <= len(out.Before) {
		t.Fatalf("before=%d after=%d", len(out.Before), len(out.After))
	}
	// The paper's sequence grows 5 instructions to 13.
	if len(out.Before) != 5 || len(out.After) != 13 {
		t.Errorf("Figure 2 shape: before=%d after=%d, want 5 and 13", len(out.Before), len(out.After))
	}
}

// NewBareMachine lives in sim; reference it so the import is explicit
// about what the harness provides.
var _ = cpu.KSeg0Base

// TestVerifyWorkloadCorpus statically verifies every Table-1 workload
// under every runtime kind: the instrumentation the simulator would
// trust at runtime must also satisfy the rewriter's invariants on
// paper (internal/verify). Each workload is compiled once and relinked
// per runtime kind.
func TestVerifyWorkloadCorpus(t *testing.T) {
	kinds := []struct {
		name string
		kind epoxie.RuntimeKind
	}{
		{"user", epoxie.UserRuntime},
		{"kernel", epoxie.KernelRuntime},
		{"bare", epoxie.BareRuntime},
	}
	for _, spec := range workload.All() {
		objs := []*obj.File{userland.Crt0(true)}
		for _, mod := range []*m.Module{spec.Build(), userland.Libc()} {
			o, err := mod.Compile(m.Options{})
			if err != nil {
				t.Fatalf("%s: compile: %v", spec.Name, err)
			}
			objs = append(objs, o)
		}
		for _, k := range kinds {
			t.Run(spec.Name+"/"+k.name, func(t *testing.T) {
				b, err := epoxie.BuildInstrumented(objs, link.Options{
					Name: spec.Name, Entry: "_start",
					TextBase: obj.UserTextBase, DataBase: obj.UserDataBase,
				}, epoxie.Config{}, k.kind)
				if err != nil {
					t.Fatalf("instrument: %v", err)
				}
				res, err := verify.Executable(b.Instr)
				if err != nil {
					t.Fatalf("verify: %v", err)
				}
				for _, d := range res.Diags {
					t.Errorf("%s", d)
				}
				if res.Blocks == 0 {
					t.Error("no instrumented blocks verified")
				}
			})
		}
	}
}

// eaAsmObj hand-writes an fp-anchored frame — which the compiler never
// emits — so the EA strength reduction (rebasing provably sp-relative
// operands onto sp and routing them to the specialized memtrace_sp
// entry) is exercised and proven against the simulator reference. The
// second rebase candidate is a hazard load (rt == base) that the
// rebase dissolves.
func eaAsmObj(t *testing.T) *obj.File {
	t.Helper()
	a := asm.New("eaprog")
	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, uint16(0x10000-32)))
	a.I(isa.ADDU(isa.RegFP, isa.RegSP, isa.RegZero)) // fp := sp
	a.I(isa.ADDIU(isa.RegT0, isa.RegZero, 0x1234))
	a.I(isa.SW(isa.RegT0, isa.RegFP, 8))  // rebased: sw t0,8(sp)
	a.I(isa.SW(isa.RegT0, isa.RegSP, 16)) // direct memtrace_sp
	a.I(isa.LW(isa.RegT1, isa.RegSP, 8))  // direct memtrace_sp
	a.I(isa.ADDU(isa.RegT3, isa.RegFP, isa.RegZero))
	a.I(isa.LW(isa.RegT3, isa.RegT3, 16)) // hazard, dissolved by rebase to 16(sp)
	a.I(isa.ADDU(isa.RegV0, isa.RegT1, isa.RegZero))
	a.I(isa.ADDU(isa.RegV0, isa.RegV0, isa.RegT3))
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 32))
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEAStrengthReduction(t *testing.T) {
	build := func(fl epoxie.FlowMode) *epoxie.Build {
		b, err := epoxie.BuildInstrumented(
			[]*obj.File{sim.TracedStartObj(), eaAsmObj(t)},
			link.Options{Name: "ea", TextBase: sim.BareTextBase, DataBase: sim.BareDataBase},
			epoxie.Config{Flow: fl}, epoxie.BareRuntime)
		if err != nil {
			t.Fatalf("instrument (flow %d): %v", fl, err)
		}
		return b
	}
	runTraced := func(b *epoxie.Build) uint64 {
		tm := sim.NewBareMachine(b.Instr)
		if err := tm.Run(400_000_000); err != nil {
			t.Fatalf("traced run: %v", err)
		}
		return tm.CPU.Stat.Instret
	}

	on := build(epoxie.FlowOn)
	fl := on.Instr.Instr.Flow
	if fl.EARebased < 2 {
		t.Errorf("EARebased = %d, want >= 2 (plain store + hazard load)", fl.EARebased)
	}
	if fl.EASpecial < 4 {
		t.Errorf("EASpecial = %d, want >= 4", fl.EASpecial)
	}
	if len(fl.EARebases) != fl.EARebased {
		t.Errorf("EARebases records %d != EARebased %d", len(fl.EARebases), fl.EARebased)
	}
	if _, ok := on.Instr.Symbol("memtrace_sp"); !ok {
		t.Fatal("memtrace_sp missing from instrumented image")
	}
	var store, load bool
	for _, w := range on.Instr.Text {
		store = store || w == isa.SW(isa.RegT0, isa.RegSP, 8)
		load = load || w == isa.LW(isa.RegT3, isa.RegSP, 16)
	}
	if !store || !load {
		t.Errorf("rebased slots missing in FlowOn text (store %v, load %v)", store, load)
	}
	// Dynamic proof: trace events identical to the simulator reference.
	if _, v := checkBuildTrace(t, on); v != 0x2468 {
		t.Errorf("traced v0 = %#x, want 0x2468", v)
	}
	requireCleanVerify(t, on.Instr)

	// Layout parity: FlowPadded keeps FlowOff's exact text size and
	// block addresses while carrying the rebased operands, so the
	// differential oracle can prove the rebases with layout held fixed.
	off, pad := build(epoxie.FlowOff), build(epoxie.FlowPadded)
	if len(off.Instr.Text) != len(pad.Instr.Text) {
		t.Fatalf("text size: FlowOff %d words, FlowPadded %d", len(off.Instr.Text), len(pad.Instr.Text))
	}
	if len(off.Instr.Blocks) != len(pad.Instr.Blocks) {
		t.Fatalf("blocks: FlowOff %d, FlowPadded %d", len(off.Instr.Blocks), len(pad.Instr.Blocks))
	}
	for i := range off.Instr.Blocks {
		if off.Instr.Blocks[i].Addr != pad.Instr.Blocks[i].Addr {
			t.Fatalf("block %d: FlowOff head 0x%08x, FlowPadded 0x%08x",
				i, off.Instr.Blocks[i].Addr, pad.Instr.Blocks[i].Addr)
		}
	}
	if pad.Instr.Instr.Flow.EARebased < 2 {
		t.Errorf("FlowPadded EARebased = %d, want >= 2", pad.Instr.Instr.Flow.EARebased)
	}
	checkBuildTrace(t, off)
	checkBuildTrace(t, pad)

	// The specialized runtime path must actually be cheaper.
	onN, offN := runTraced(on), runTraced(off)
	if onN >= offN {
		t.Errorf("FlowOn retired %d instructions, FlowOff %d: specialization saved nothing", onN, offN)
	}
}

// requireCleanVerify asserts the image passes the static verifier.
func requireCleanVerify(t *testing.T, e *obj.Executable) {
	t.Helper()
	res, err := verify.Executable(e)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	for _, d := range res.Diags {
		t.Errorf("verifier diagnostic: %s", d)
	}
}

// TestStaticCostModel runs the dataflow trace-cost model over an
// instrumented doubly nested loop and checks its structural facts:
// full coverage of the recorded blocks, the nesting detected, the
// per-entry cost bounded by the real block costs, and the
// instrumentation growth accounted per function.
func TestStaticCostModel(t *testing.T) {
	b := buildPair(t, growthWorkload(), epoxie.Config{})
	c, err := dataflow.StaticCostTraced(b.Instr)
	if err != nil {
		t.Fatal(err)
	}
	if c.Blocks != len(b.Instr.Instr.Blocks) {
		t.Errorf("model covers %d blocks, image records %d", c.Blocks, len(b.Instr.Instr.Blocks))
	}
	if c.MaxDepth < 2 {
		t.Errorf("max loop depth %d, want >= 2 for a doubly nested loop", c.MaxDepth)
	}
	// Per-entry cost is a weighted mean of 1+|Mem| over blocks, so it
	// must sit inside the per-block extremes.
	lo, hi := 1<<30, 0
	for i := range b.Instr.Instr.Blocks {
		w := 1 + len(b.Instr.Instr.Blocks[i].Mem)
		if w < lo {
			lo = w
		}
		if w > hi {
			hi = w
		}
	}
	if wpb := c.WordsPerBlock(); wpb < float64(lo) || wpb > float64(hi) {
		t.Errorf("words/block %.2f outside block-cost range [%d,%d]", wpb, lo, hi)
	}
	if c.AddedInstr <= 0 || c.AddedPerInstr() <= 0 {
		t.Errorf("no instrumentation growth accounted: %+v", c)
	}
	var mainFn *dataflow.FuncCost
	for i := range c.Funcs {
		if c.Funcs[i].Name == "main" {
			mainFn = &c.Funcs[i]
		}
	}
	if mainFn == nil {
		t.Fatal("no per-function row for main")
	}
	if mainFn.Depth < 2 || mainFn.Blocks == 0 || mainFn.WordsPerInstr() <= 0 {
		t.Errorf("main row implausible: %+v", mainFn)
	}

	// The inner loop must dominate the weighted mix: the model's
	// words/instr should be closer to the hot inner blocks' ratio than
	// an unweighted average would be. Sanity-bound it to (0, 2].
	if wpi := c.WordsPerInstr(); wpi <= 0 || wpi > 2 {
		t.Errorf("words/instr %.3f implausible", wpi)
	}
}
