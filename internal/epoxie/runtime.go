package epoxie

import (
	"fmt"

	"systrace/internal/asm"
	"systrace/internal/isa"
	"systrace/internal/obj"
	"systrace/internal/trace"
)

// The tracing runtime: bbtrace and memtrace, hand-written assembly
// that is linked into every instrumented image and never itself
// instrumented. bbtrace reads the trace-word count from the LINop in
// its caller's delay slot to check for buffer room, then records the
// block entry with a single store; memtrace "partially decodes the
// instruction in the branch delay slot to compute the address of the
// memory reference" (§3.2) via a 32-way dispatch on the base register.
//
// Both routines may use only xreg1, xreg2 and the assembler temporary
// `at` — except that memtrace must preserve `at`, because register
// stealing uses `at` as the replacement base register of the traced
// memory instruction. Both restore ra from the bookkeeping area before
// returning.

// RuntimeKind selects the buffer-full policy.
type RuntimeKind int

const (
	// UserRuntime traps to the kernel (break) when the per-process
	// buffer fills; the kernel copies it into the in-kernel buffer.
	UserRuntime RuntimeKind = iota
	// KernelRuntime cannot trap: it raises the full flag in the
	// bookkeeping area and keeps writing into the slack region until
	// the kernel reaches a safe point ("provisions must be made for
	// critical system operations to complete", §3.3).
	KernelRuntime
	// BareRuntime halts the machine on overflow: used by toolchain
	// tests, which size the buffer generously.
	BareRuntime
)

// RuntimeObj builds the runtime object.
func RuntimeObj(kind RuntimeKind) *obj.File {
	a := asm.New(fmt.Sprintf("epoxie-rt-%d", int(kind)))

	// ---- bbtrace ----
	a.Func("bbtrace", asm.NoInstrument)
	a.I(isa.SW(isa.RegRA, xr3, trace.BookBusy)) // in-flight: kernel must not reset the buffer
	a.I(isa.LW(xr1, xr3, trace.BookBufPtr))
	a.I(isa.LW(xr2, isa.RegRA, uint16(0xfffc))) // LINop at ra-4
	a.I(isa.ANDI(xr2, xr2, 0xffff))             // words of trace for this block
	a.I(isa.SLL(xr2, xr2, 2))
	a.I(isa.ADDU(xr2, xr1, xr2)) // required end
	a.I(isa.LW(isa.RegAT, xr3, trace.BookBufEnd))
	a.I(isa.SLTU(isa.RegAT, isa.RegAT, xr2)) // end < required?
	a.Br(isa.BNE(isa.RegAT, isa.RegZero, 0), "bbtrace_full")
	a.I(isa.NOP)
	a.Label("bbtrace_store")
	a.I(isa.SW(isa.RegRA, xr1, 0)) // one store records the entry
	a.I(isa.ADDIU(xr1, xr1, 4))
	a.I(isa.SW(xr1, xr3, trace.BookBufPtr))
	a.I(isa.SW(isa.RegZero, xr3, trace.BookBusy))
	a.I(isa.OR(xr2, isa.RegRA, isa.RegZero))
	a.I(isa.LW(isa.RegRA, xr3, trace.BookSavedRA))
	a.I(isa.JR(xr2))
	a.I(isa.NOP)

	a.Label("bbtrace_full")
	switch kind {
	case UserRuntime:
		// Trap: the kernel copies the buffer and resets BufPtr. Clear
		// the busy flag first: this entry *wants* the flush.
		a.I(isa.SW(isa.RegZero, xr3, trace.BookBusy))
		a.I(isa.BREAK(trace.BreakTraceFlush))
		a.Jmp("bbtrace")
		a.I(isa.NOP)
	case KernelRuntime:
		a.I(isa.ORI(isa.RegAT, isa.RegZero, 1))
		a.I(isa.SW(isa.RegAT, xr3, trace.BookFullFlag))
		a.Jmp("bbtrace_store") // keep writing into the slack
		a.I(isa.NOP)
	case BareRuntime:
		a.I(isa.BREAK(31)) // overflow is a test-configuration bug
		a.Jmp("bbtrace")
		a.I(isa.NOP)
	}

	// ---- memtrace ----
	a.Func("memtrace", asm.NoInstrument)
	a.I(isa.SW(isa.RegRA, xr3, trace.BookBusy)) // in-flight
	a.I(isa.LW(xr1, isa.RegRA, uint16(0xfffc))) // delay-slot instruction
	a.I(isa.SLL(xr2, xr1, 16))
	a.I(isa.SRA(xr2, xr2, 16)) // sign-extended displacement
	a.I(isa.SW(xr2, xr3, trace.BookImm))
	a.I(isa.SRL(xr2, xr1, 21))
	a.I(isa.ANDI(xr2, xr2, 31)) // base register number
	a.I(isa.SLL(xr2, xr2, 4))   // 16 bytes per dispatch entry
	a.LA(xr1, "memtrace_table", 0)
	a.I(isa.ADDU(xr1, xr1, xr2))
	a.I(isa.JR(xr1))
	a.I(isa.NOP)

	// Dispatch table: four instructions per base register. Most
	// entries move the live register; ra and the stolen registers
	// dispatch to their shadow values.
	a.Func("memtrace_table", asm.NoInstrument)
	for reg := 0; reg < 32; reg++ {
		switch reg {
		case isa.RegRA:
			a.I(isa.LW(xr1, xr3, trace.BookSavedRA))
		case xr1:
			a.I(isa.LW(xr1, xr3, trace.BookShadow1))
		case xr2:
			a.I(isa.LW(xr1, xr3, trace.BookShadow2))
		case xr3:
			a.I(isa.LW(xr1, xr3, trace.BookShadow3))
		default:
			a.I(isa.OR(xr1, reg, isa.RegZero))
		}
		a.Jmp("memtrace_common")
		a.I(isa.NOP)
		a.I(isa.NOP)
	}

	a.Label("memtrace_common")
	a.I(isa.LW(xr2, xr3, trace.BookImm))
	a.I(isa.ADDU(xr1, xr1, xr2)) // effective address
	a.I(isa.LW(xr2, xr3, trace.BookBufPtr))
	a.I(isa.SW(xr1, xr2, 0)) // one store records the entry
	a.I(isa.ADDIU(xr2, xr2, 4))
	a.I(isa.SW(xr2, xr3, trace.BookBufPtr))
	a.I(isa.SW(isa.RegZero, xr3, trace.BookBusy))
	a.I(isa.OR(xr2, isa.RegRA, isa.RegZero))
	a.I(isa.LW(isa.RegRA, xr3, trace.BookSavedRA))
	a.I(isa.JR(xr2))
	a.I(isa.NOP)

	// ---- memtrace_sp ----
	// Specialized entry for references whose base register is sp (the
	// dominant class): sp is never stolen and never touched by the
	// instrumentation, so the 32-way dispatch and the BookImm round trip
	// collapse into a direct add off the live register. The rewriter
	// routes a group here only when the (possibly rebased) slot
	// instruction's base is sp; hazard groups qualify too, since their
	// EA no-op slot encodes the same base and displacement. Same
	// register contract as memtrace: clobbers xreg1/xreg2, preserves
	// `at`, restores ra from the bookkeeping area.
	a.Func("memtrace_sp", asm.NoInstrument)
	a.I(isa.SW(isa.RegRA, xr3, trace.BookBusy)) // in-flight
	a.I(isa.LW(xr1, isa.RegRA, uint16(0xfffc))) // delay-slot instruction
	a.I(isa.SLL(xr1, xr1, 16))
	a.I(isa.SRA(xr1, xr1, 16))         // sign-extended displacement
	a.I(isa.ADDU(xr1, isa.RegSP, xr1)) // effective address
	a.I(isa.LW(xr2, xr3, trace.BookBufPtr))
	a.I(isa.SW(xr1, xr2, 0)) // one store records the entry
	a.I(isa.ADDIU(xr2, xr2, 4))
	a.I(isa.SW(xr2, xr3, trace.BookBufPtr))
	a.I(isa.SW(isa.RegZero, xr3, trace.BookBusy))
	a.I(isa.OR(xr2, isa.RegRA, isa.RegZero))
	a.I(isa.LW(isa.RegRA, xr3, trace.BookSavedRA))
	a.I(isa.JR(xr2))
	a.I(isa.NOP)

	return a.MustFinish()
}

// Original-epoxie emission (Config.Orig). The original tool and pixie
// used bulkier inline sequences — "all of which expand the text by a
// factor of 4-6 when used for address tracing. It should be noted that
// minimal text growth was not a design objective for any of the
// earlier tools" (§3.2). We model that style: an inline dynamic
// instruction counter per block and a fully inline trace store per
// memory reference.

// emitOrigPrologue emits the six-instruction block prologue and
// returns the record (jal-return) offset.
func (r *rw) emitOrigPrologue(b *obj.BasicBlock) uint32 {
	r.emit(isa.SW(isa.RegRA, xr3, trace.BookSavedRA))
	jal := r.emit(isa.JAL(0))
	r.newRelocs = append(r.newRelocs, obj.Reloc{Off: jal, Kind: obj.RelJ26, Sym: r.symBB})
	r.emit(isa.LINop(b.TraceWords()))
	// Inline dynamic instruction counter.
	r.emit(isa.LW(isa.RegAT, xr3, trace.BookICount))
	r.emit(isa.ADDIU(isa.RegAT, isa.RegAT, uint16(b.NInstr)))
	r.emit(isa.SW(isa.RegAT, xr3, trace.BookICount))
	return jal + 8
}

// emitOrigMemRef emits the fully inline trace store (nine extra
// instructions per reference, including a per-reference bounds check —
// the original tools did not batch the room check per block the way
// the modified bbtrace protocol does) and returns the new offset of
// the original instruction.
func (r *rw) emitOrigMemRef(w isa.Word) uint32 {
	i := isa.Decode(w)
	r.emit(isa.SW(isa.RegAT, xr3, trace.BookTmp)) // preserve at (may be the base)
	r.emit(isa.ADDIU(isa.RegAT, i.Rs, i.Imm))     // effective address
	r.emit(isa.LW(xr1, xr3, trace.BookBufPtr))
	r.emit(isa.LW(xr2, xr3, trace.BookBufEnd))
	r.emit(isa.SLTU(xr2, xr1, xr2))
	r.emit(isa.BEQ(xr2, isa.RegZero, 4)) // full: skip the store
	r.emit(isa.NOP)                      // delay slot
	r.emit(isa.SW(isa.RegAT, xr1, 0))
	r.emit(isa.ADDIU(xr1, xr1, 4))
	r.emit(isa.SW(xr1, xr3, trace.BookBufPtr))
	r.emit(isa.LW(isa.RegAT, xr3, trace.BookTmp))
	return r.emit(w)
}
