// Package epoxie implements the paper's central tool: a link-time
// object-code rewriter that inserts address-tracing code. Epoxie
// "rewrites object files at link time. Modifying object code at link
// time is easier than modifying an executable, because the symbol and
// relocation tables present in object code allow epoxie to distinguish
// unambiguously between uses of addresses and uses of coincidentally
// similar constants. This information also allows all address
// correction to be done statically, incurring no runtime overhead"
// (§3.2).
//
// Each basic block is preceded by a three-instruction sequence
//
//	sw   ra, 124(xreg3)
//	jal  bbtrace
//	li   zero, N          ; words of trace this block generates
//
// and each memory instruction becomes `jal memtrace` with the memory
// instruction in the branch delay slot — or, in hazard cases, an
// effective-address no-op in the slot with the real instruction issued
// after the call. Three stolen registers (xreg1..xreg3) carry tracing
// state; uses of them in the original binary are rewritten against
// shadow values in memory.
package epoxie

import (
	"fmt"

	"systrace/internal/dataflow"
	"systrace/internal/isa"
	"systrace/internal/obj"
	"systrace/internal/trace"
)

// FlowMode selects how the rewriter uses dataflow liveness.
type FlowMode uint8

const (
	// FlowOn (the default) elides save/restore traffic that liveness
	// proves dead: blocks whose live-in excludes ra get the two-word
	// lean prologue, and borrowed scratch registers proven dead skip
	// the bookkeeping save/restore bracket.
	FlowOn FlowMode = iota
	// FlowOff disables the analysis entirely; every site uses the
	// conservative idiom. This is the paper's original emission.
	FlowOff
	// FlowPadded makes the same liveness decisions as FlowOn but
	// replaces each elided save/restore with a NOP, so the image has
	// the exact layout of FlowOff while exhibiting FlowOn's register
	// semantics (the stale ra restore, the clobbered scratch). The
	// differential oracle runs this variant against FlowOff to prove
	// the liveness claims dynamically; it is never verified or
	// flagged lean.
	FlowPadded
)

// Config selects the instrumentation variant.
type Config struct {
	// Orig selects the original-epoxie emission style: inline
	// trace-collection sequences instead of the compact out-of-line
	// jal forms, expanding text by 4-6x rather than 1.9-2.3x (§3.2
	// footnote). Used for the text-growth comparison (experiment E7).
	Orig bool
	// Flow selects the dataflow-elision mode. It has effect only
	// through BuildInstrumented, which runs the analysis; a direct
	// Rewrite call has no liveness facts and always emits the
	// conservative idiom.
	Flow FlowMode

	// facts carries this object's liveness solution; set by
	// BuildInstrumented, nil for standalone Rewrite calls.
	facts *dataflow.Facts
}

// Rewritten pairs a rewritten object with the mapping information the
// linker needs to build the instrumented executable's side table.
type Rewritten struct {
	File *obj.File
	// Map has one entry per original basic block, in order.
	Map []BlockMap
	// OrigWords / NewWords measure text growth for this object.
	OrigWords int
	NewWords  int
	// Flow counts what liveness-driven elision did in this object.
	Flow obj.FlowStats
}

// BlockMap correlates one original block with its rewritten form.
type BlockMap struct {
	OldOff    uint32      // block offset in original text
	NewOff    uint32      // block offset (prologue start) in rewritten text
	RecordOff uint32      // jal-return offset within rewritten text; ^0 if the block emits no records
	Flags     obj.BBFlags // original flags plus any rewrite markers (BBLeanPrologue)
	Orig      obj.BasicBlock
}

// NoRecord marks blocks that generate no trace records.
const NoRecord = ^uint32(0)

const (
	xr1 = isa.XReg1
	xr2 = isa.XReg2
	xr3 = isa.XReg3
)

// rw is the per-object rewriting state.
type rw struct {
	cfg Config
	in  *obj.File
	out []isa.Word
	// instrNew maps original instruction byte offset to the new byte
	// offset of the (possibly rewritten) instruction itself.
	instrNew map[uint32]uint32
	// leaderNew maps original block offsets to new block starts.
	leaderNew map[uint32]uint32
	maps      []BlockMap
	newRelocs []obj.Reloc
	symBB     int    // symbol index of bbtrace
	symMT     int    // symbol index of memtrace
	symMTSP   int    // symbol index of memtrace_sp
	curBlock  uint32 // original offset of the block being rewritten
	flow      obj.FlowStats
	err       error
}

// liveAt returns the original program's liveness immediately before
// instruction k of the current block, or (AllRegs, false) when no
// facts are available (standalone Rewrite, FlowOff, or Orig mode).
func (r *rw) liveAt(k int) (isa.RegSet, bool) {
	if r.cfg.facts == nil || r.cfg.Flow == FlowOff || r.cfg.Orig {
		return isa.AllRegs, false
	}
	live, ok := r.cfg.facts.LiveAt(r.curBlock, k)
	if !ok {
		return isa.AllRegs, false
	}
	return live, true
}

// Rewrite instruments one object file. The returned object references
// the runtime symbols bbtrace and memtrace, which RuntimeObj (or the
// kernel's variant) provides at link time.
func Rewrite(f *obj.File, cfg Config) (*Rewritten, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("epoxie: %w", err)
	}
	r := &rw{
		cfg:       cfg,
		in:        f,
		instrNew:  make(map[uint32]uint32, len(f.Text)),
		leaderNew: make(map[uint32]uint32, len(f.Blocks)),
	}

	// Clone symbol table; intern runtime symbols.
	nf := &obj.File{
		Name:    f.Name,
		Data:    append([]byte(nil), f.Data...),
		BSSSize: f.BSSSize,
		Syms:    append([]obj.Symbol(nil), f.Syms...),
	}
	r.symBB = nf.AddSym(obj.Symbol{Name: "bbtrace", Section: obj.SecText})
	r.symMT = nf.AddSym(obj.Symbol{Name: "memtrace", Section: obj.SecText})
	r.symMTSP = nf.AddSym(obj.Symbol{Name: "memtrace_sp", Section: obj.SecText})

	for bi := range f.Blocks {
		r.block(&f.Blocks[bi], nf)
		if r.err != nil {
			return nil, fmt.Errorf("epoxie %s: %w", f.Name, r.err)
		}
	}

	// Address correction: remap defined text symbols and, for
	// relocations against them, addends.
	oldSymOff := make([]uint32, len(f.Syms))
	for si := range nf.Syms {
		s := &nf.Syms[si]
		if si < len(f.Syms) {
			oldSymOff[si] = f.Syms[si].Off
		}
		if s.Defined && s.Section == obj.SecText && si < len(f.Syms) {
			s.Off = r.mapOff(oldSymOff[si])
		}
	}
	mapReloc := func(rl obj.Reloc, inText bool) obj.Reloc {
		if inText {
			no, ok := r.instrNew[rl.Off]
			if !ok {
				r.err = fmt.Errorf("reloc at unmapped offset 0x%x", rl.Off)
				return rl
			}
			rl.Off = no
		}
		// Addend remap for intra-object text references.
		if rl.Sym < len(f.Syms) {
			s := f.Syms[rl.Sym]
			if s.Defined && s.Section == obj.SecText {
				oldTarget := uint32(int64(s.Off) + int64(rl.Addend))
				rl.Addend = int32(r.mapOff(oldTarget)) - int32(r.mapOff(s.Off))
			}
		}
		return rl
	}
	for _, rl := range f.Relocs {
		nf.Relocs = append(nf.Relocs, mapReloc(rl, true))
	}
	for _, rl := range f.DataRelocs {
		nf.DataRelocs = append(nf.DataRelocs, mapReloc(rl, false))
	}
	if r.err != nil {
		return nil, fmt.Errorf("epoxie %s: %w", f.Name, r.err)
	}
	nf.Relocs = append(nf.Relocs, r.newRelocs...)

	// Re-encode branches against the new layout.
	r.fixBranches()
	if r.err != nil {
		return nil, fmt.Errorf("epoxie %s: %w", f.Name, r.err)
	}
	nf.Text = r.out

	// Rebuild the block table: one block per original block, spanning
	// its rewritten extent, with memory ops rescanned.
	for mi := range r.maps {
		m := &r.maps[mi]
		end := uint32(len(r.out)) * 4
		if mi+1 < len(r.maps) {
			end = r.maps[mi+1].NewOff
		}
		nb := obj.BasicBlock{
			Off:    m.NewOff,
			NInstr: int32((end - m.NewOff) / 4),
			Flags:  m.Flags,
		}
		for k := int32(0); k < nb.NInstr; k++ {
			w := r.out[m.NewOff/4+uint32(k)]
			if isa.IsMem(w) {
				nb.Mem = append(nb.Mem, obj.MemOp{Index: int16(k), Load: isa.IsLoad(w), Size: int8(isa.MemSize(w))})
			}
		}
		nf.Blocks = append(nf.Blocks, nb)
	}
	if err := nf.Validate(); err != nil {
		return nil, fmt.Errorf("epoxie %s: rewritten object invalid: %w", f.Name, err)
	}
	return &Rewritten{
		File:      nf,
		Map:       r.maps,
		OrigWords: len(f.Text),
		NewWords:  len(r.out),
		Flow:      r.flow,
	}, nil
}

// mapOff maps an original text offset to its new offset, preferring
// block starts (branch targets always land on leaders; a block's new
// start includes its trace prologue).
func (r *rw) mapOff(old uint32) uint32 {
	if n, ok := r.leaderNew[old]; ok {
		return n
	}
	if n, ok := r.instrNew[old]; ok {
		return n
	}
	if old == uint32(len(r.in.Text))*4 {
		return uint32(len(r.out)) * 4 // end-of-text marker
	}
	r.err = fmt.Errorf("unmapped text offset 0x%x", old)
	return 0
}

func (r *rw) emit(w isa.Word) uint32 {
	off := uint32(len(r.out)) * 4
	r.out = append(r.out, w)
	return off
}

// fault records a rewriting error.
func (r *rw) fault(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// block rewrites one basic block.
func (r *rw) block(b *obj.BasicBlock, nf *obj.File) {
	newStart := uint32(len(r.out)) * 4
	m := BlockMap{OldOff: b.Off, NewOff: newStart, RecordOff: NoRecord, Flags: b.Flags, Orig: *b}
	r.leaderNew[b.Off] = newStart
	r.curBlock = b.Off

	instrument := b.Flags&(obj.BBNoInstrument|obj.BBHandTraced) == 0
	if b.Flags&obj.BBHandTraced != 0 {
		// Hand-traced code records its own entries, keyed by the
		// (relocated) address of the block start.
		m.RecordOff = newStart
	}

	if instrument {
		if r.cfg.Orig {
			m.RecordOff = r.emitOrigPrologue(b)
		} else {
			// Full prologue: sw ra, 124(xreg3); jal bbtrace; li zero, N.
			// When liveness proves ra dead on entry, the save is elided
			// (lean prologue) — bbtrace's restore then loads a stale
			// value into a register nothing will read.
			r.flow.SaveSites++
			lean := false
			if in, ok := r.liveAt(0); ok && !in.Has(isa.RegRA) {
				lean = true
			}
			switch {
			case lean && r.cfg.Flow == FlowPadded:
				// Oracle layout: keep the three-word shape, drop only
				// the save's effect.
				r.flow.SavesElided++
				r.emit(isa.NOP)
			case lean:
				r.flow.SavesElided++
				r.flow.BytesSaved += 4
				m.Flags |= obj.BBLeanPrologue
			default:
				r.flow.Fallbacks++
				r.emit(isa.SW(isa.RegRA, xr3, trace.BookSavedRA))
			}
			jal := r.emit(isa.JAL(0))
			r.newRelocs = append(r.newRelocs, obj.Reloc{Off: jal, Kind: obj.RelJ26, Sym: r.symBB})
			r.emit(isa.LINop(b.TraceWords()))
			m.RecordOff = jal + 8
		}
	}

	// Find the terminator pair: [..., term, slot] when the block ends
	// with a control transfer.
	n := int(b.NInstr)
	words := r.in.Text[b.Off/4 : b.Off/4+uint32(n)]
	bodyEnd := n
	hasPair := false
	if n >= 2 && isa.HasDelaySlot(words[n-2]) {
		bodyEnd = n - 2
		hasPair = true
	}

	for k := 0; k < bodyEnd; k++ {
		r.instruction(b.Off+uint32(k)*4, words[k], instrument)
	}
	if hasPair {
		r.terminatorPair(b.Off+uint32(bodyEnd)*4, words[n-2], words[n-1], instrument)
	}
	r.maps = append(r.maps, m)
}

// instruction rewrites one non-terminator instruction. Register
// stealing applies only to instrumented code: uninstrumented blocks
// (the tracing runtime, delicate handlers) use the xregs on purpose.
func (r *rw) instruction(oldOff uint32, w isa.Word, instrument bool) {
	var pre, post []isa.Word
	main := w
	if instrument {
		pre, main, post = r.steal(w, int(oldOff-r.curBlock)/4)
	}
	for _, p := range pre {
		r.emit(p)
	}
	if instrument && isa.IsMem(main) {
		r.memRef(oldOff, main)
	} else {
		r.instrNew[oldOff] = r.emit(main)
	}
	for _, p := range post {
		r.emit(p)
	}
	if instrument && isa.Defs(main) == isa.RegRA {
		// Keep the shadow copy of ra fresh so memtrace's ra dispatch
		// and block-end restores stay correct.
		r.emit(isa.SW(isa.RegRA, xr3, trace.BookSavedRA))
	}
}

// memHazard reports whether w cannot sit live in the jal delay slot:
// its base is ra (clobbered by the call convention) or it is a load
// overwriting its own base before memtrace decodes it.
func memHazard(w isa.Word) bool {
	i := isa.Decode(w)
	return isa.Touches(w, isa.RegRA) || (isa.IsLoad(w) && i.Rt == i.Rs)
}

// memRef emits the memtrace call for a memory instruction.
func (r *rw) memRef(oldOff uint32, w isa.Word) {
	if r.cfg.Orig {
		r.instrNew[oldOff] = r.emitOrigMemRef(w)
		return
	}
	r.flow.EASites++
	w2, reb := r.rebaseEA(oldOff, w)
	i2 := isa.Decode(w2)

	if r.cfg.Flow == FlowPadded {
		// Layout parity with FlowOff: the group keeps the pre-rebase
		// hazard shape and the general memtrace entry; only the
		// addressing operand carries the rebase, so the differential
		// oracle proves each rebased EA dynamically without moving a
		// single address.
		if reb != nil {
			r.flow.EARebased++
		}
		jal := r.emit(isa.JAL(0))
		r.newRelocs = append(r.newRelocs, obj.Reloc{Off: jal, Kind: obj.RelJ26, Sym: r.symMT})
		if memHazard(w) {
			r.emit(isa.EANop(i2.Rs, i2.Imm, isa.MemSize(w2)))
		}
		r.instrNew[oldOff] = r.emit(w2)
		return
	}

	// FlowOn (or no facts, where w2 == w): the group takes the
	// post-rebase hazard shape, and a slot whose base is sp routes to
	// the specialized memtrace_sp entry — sp is never stolen and never
	// touched by instrumentation, so that entry skips the 32-way base
	// dispatch.
	hazard := memHazard(w2)
	sym := r.symMT
	if i2.Rs == isa.RegSP && r.cfg.facts != nil && r.cfg.Flow == FlowOn {
		sym = r.symMTSP
		r.flow.EASpecial++
	}
	jal := r.emit(isa.JAL(0))
	r.newRelocs = append(r.newRelocs, obj.Reloc{Off: jal, Kind: obj.RelJ26, Sym: sym})
	var slot uint32
	if hazard {
		// EA no-op in the slot; real instruction after the call.
		slot = r.emit(isa.EANop(i2.Rs, i2.Imm, isa.MemSize(w2)))
		r.instrNew[oldOff] = r.emit(w2)
	} else {
		slot = r.emit(w2)
		r.instrNew[oldOff] = slot
	}
	if reb != nil {
		r.flow.EARebased++
		reb.Addr = slot
		r.flow.EARebases = append(r.flow.EARebases, *reb)
	}
}

// rebaseEA rewrites w's addressing operand onto a provably equal
// anchor register when that strengthens the trace group: routing it to
// the specialized sp runtime entry, or clearing a hazard so the EA
// no-op word disappears. Requires value facts proving the original
// base equals the anchor plus a 16-bit displacement at this point.
func (r *rw) rebaseEA(oldOff uint32, w isa.Word) (isa.Word, *obj.EARebase) {
	if r.cfg.facts == nil || r.cfg.Flow == FlowOff || r.cfg.Orig {
		return w, nil
	}
	op := isa.Decode(r.in.Text[oldOff/4])
	i := isa.Decode(w)
	if i.Rs != op.Rs {
		// Register stealing moved the base onto a shadow load; the
		// facts describe the guest register, not the replacement.
		return w, nil
	}
	switch op.Rs {
	case isa.RegAT, isa.RegRA, isa.RegK0, isa.RegK1, xr1, xr2, xr3:
		// Registers whose instrumented-image value at the slot is not
		// the guest's: the verifier's redundant-ea rule could never
		// re-prove the equality there.
		return w, nil
	}
	st, ok := r.cfg.facts.ValuesAt(r.curBlock, int(oldOff-r.curBlock)/4)
	if !ok {
		return w, nil
	}
	v := st.Reg(op.Rs)
	for _, nb := range [2]int{isa.RegSP, isa.RegGP} {
		if nb == op.Rs {
			break // already anchored; nothing to gain
		}
		d, ok := v.Diff(st.Reg(nb))
		if !ok {
			continue
		}
		newImm := int32(int16(i.Imm)) + d
		if newImm < -0x8000 || newImm > 0x7fff {
			continue
		}
		if isa.IsLoad(w) && i.Rt == nb {
			continue // would recreate the load hazard on the new base
		}
		w2 := w&^isa.Word(0x03e0ffff) | isa.Word(nb)<<21 | isa.Word(uint16(newImm))
		// Benefit test: the sp anchor enables memtrace_sp; the gp
		// anchor pays off only when it clears a hazard form.
		if nb != isa.RegSP && !(memHazard(w) && !memHazard(w2)) {
			continue
		}
		return w2, &obj.EARebase{
			OrigBase: uint8(op.Rs), NewBase: uint8(nb),
			OrigImm: i.Imm, NewImm: uint16(newImm),
		}
	}
	return w, nil
}

// terminatorPair rewrites a control transfer and its delay slot. Both
// halves are steal-rewritten against the liveness point before the
// terminator: everything emitted here (hoisted slot pre-loads, the
// terminator's own shadow loads) executes from that point on.
func (r *rw) terminatorPair(termOff uint32, term, slot isa.Word, instrument bool) {
	if !instrument {
		r.instrNew[termOff] = r.emit(term)
		r.instrNew[termOff+4] = r.emit(slot)
		return
	}
	termIdx := int(termOff-r.curBlock) / 4
	live, haveLive := r.liveAt(termIdx)
	pad := r.cfg.Flow == FlowPadded

	// Steal-rewrite the terminator (pre-loads only; terminators never
	// write xregs in our code, but jr xreg / beq xreg are possible).
	tplan, err := planSteal(term, isa.RegAT, isa.NOP, live, haveLive, pad)
	if err != nil {
		r.fault("%v", err)
		return
	}
	r.account(tplan)
	tpre, tmain, tpost := tplan.pre, tplan.main, tplan.post
	if len(tpost) != 0 {
		r.fault("terminator at 0x%x writes a stolen register", termOff)
		return
	}

	// The slot's borrowed scratch must also stay clear of the
	// terminator: its pre-loads are hoisted above it, and (when the
	// bracket is elided) its clobber survives past it.
	splan, err := planSteal(slot, isa.RegAT, tmain, live, haveLive, pad)
	if err != nil {
		r.fault("%v", err)
		return
	}

	if isa.IsMem(splan.main) {
		// The slot holds a memory instruction: hoist it (with its
		// memtrace call) above the terminator when that is safe. The
		// whole group — including a bracketed restore — completes
		// before the terminator issues.
		r.account(splan)
		if !isa.SafeToHoist(tmain, splan.main) {
			r.fault("memory instruction in delay slot at 0x%x cannot be hoisted", termOff+4)
			return
		}
		for _, p := range splan.pre {
			r.emit(p)
		}
		r.memRef(termOff+4, splan.main)
		for _, p := range splan.post {
			r.emit(p)
		}
		for _, p := range tpre {
			r.emit(p)
		}
		r.instrNew[termOff] = r.emit(tmain)
		r.emit(isa.NOP)
		return
	}

	if len(splan.post) != 0 {
		// A restore could only issue after the transfer takes effect.
		r.fault("delay slot at 0x%x writes a stolen register", termOff+4)
		return
	}
	if len(splan.pre) != 0 && len(tpre) != 0 {
		// Both rewrites claimed `at`, and the slot's load is hoisted
		// above the terminator's. If they shadow the same stolen
		// register one load serves both; otherwise the slot must move
		// to a scratch register proven dead across the pair (there is
		// nowhere to put a restore).
		sx := firstStolenRead(slot)
		tx := firstStolenRead(term)
		switch {
		case sx == tx && len(splan.pre) == 1 && len(tpre) == 1:
			splan.pre = nil
		default:
			cand := -1
			if haveLive {
				for _, c := range scratchCandidates {
					if !live.Has(c) && !isa.Touches(slot, c) && !isa.Touches(term, c) {
						cand = c
						break
					}
				}
			}
			if cand < 0 {
				r.fault("delay slot and terminator at 0x%x both need the assembler scratch and no register is provably dead", termOff)
				return
			}
			splan, err = planSteal(slot, cand, tmain, live, haveLive, pad)
			if err != nil || len(splan.post) != 0 {
				r.fault("delay slot at 0x%x cannot be re-registered around its terminator", termOff+4)
				return
			}
			r.flow.SaveSites++
			r.flow.SavesElided++
		}
	}
	r.account(splan)
	for _, p := range splan.pre {
		r.emit(p)
	}
	for _, p := range tpre {
		r.emit(p)
	}
	r.instrNew[termOff] = r.emit(tmain)
	r.instrNew[termOff+4] = r.emit(splan.main)
}

// firstStolenRead returns the first stolen register w reads, or -1.
func firstStolenRead(w isa.Word) int {
	for _, rr := range isa.Uses(w) {
		if isXReg(rr) {
			return rr
		}
	}
	return -1
}

// fixBranches re-encodes PC-relative branches against the new layout.
func (r *rw) fixBranches() {
	for oldOff, newOff := range r.instrNew {
		w := r.out[newOff/4]
		if !isa.IsBranch(w) {
			continue
		}
		imm := int32(int16(w))
		oldTarget := uint32(int64(oldOff) + 4 + int64(imm)*4)
		newTarget := r.mapOff(oldTarget)
		diff := (int64(newTarget) - int64(newOff) - 4) / 4
		if diff > 32767 || diff < -32768 {
			r.fault("branch at 0x%x out of range after expansion (%d words)", oldOff, diff)
			return
		}
		r.out[newOff/4] = w&0xffff0000 | uint32(uint16(int16(diff)))
	}
}
