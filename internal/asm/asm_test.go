package asm_test

import (
	"testing"

	"systrace/internal/asm"
	"systrace/internal/isa"
	"systrace/internal/obj"
)

func TestBranchFixupsAndBlocks(t *testing.T) {
	a := asm.New("t")
	a.Func("f", 0)
	a.I(isa.ORI(isa.RegT0, 0, 3))
	a.Label("loop")
	a.I(isa.ADDIU(isa.RegT0, isa.RegT0, 0xffff)) // t0--
	a.Br(isa.BNE(isa.RegT0, isa.RegZero, 0), "loop")
	a.I(isa.NOP)
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// The branch at word 2 must target word 1: offset -2.
	br := f.Text[2]
	if int16(br&0xffff) != -2 {
		t.Errorf("branch offset %d want -2", int16(br&0xffff))
	}
	// Blocks: [0..1) entry, [1..4) loop+branch+slot, [4..6) jr+slot.
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d want 3: %+v", len(f.Blocks), f.Blocks)
	}
	if f.Blocks[1].Off != 4 || f.Blocks[1].NInstr != 3 {
		t.Errorf("loop block wrong: %+v", f.Blocks[1])
	}
}

func TestFuncFlagsPropagate(t *testing.T) {
	a := asm.New("t")
	a.Func("normal", 0)
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	a.Func("special", asm.NoInstrument|asm.IdleLoop)
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if f.Blocks[0].Flags != 0 {
		t.Error("normal function flagged")
	}
	if f.Blocks[1].Flags&obj.BBNoInstrument == 0 || f.Blocks[1].Flags&obj.BBIdleLoop == 0 {
		t.Errorf("special flags = %v", f.Blocks[1].Flags)
	}
}

func TestUTLBFlagImpliesNoInstrument(t *testing.T) {
	a := asm.New("t")
	a.Func("utlb", asm.UTLBHandler)
	a.I(isa.JR(isa.RegK1))
	a.I(isa.RFE())
	f, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if f.Blocks[0].Flags&obj.BBUTLBHandler == 0 || f.Blocks[0].Flags&obj.BBNoInstrument == 0 {
		t.Errorf("flags = %v", f.Blocks[0].Flags)
	}
}

func TestErrors(t *testing.T) {
	a := asm.New("t")
	a.Func("f", 0)
	a.Br(isa.BEQ(0, 0, 0), "nowhere")
	a.I(isa.NOP)
	if _, err := a.Finish(); err == nil {
		t.Error("undefined label accepted")
	}

	a2 := asm.New("t")
	a2.Func("f", 0)
	a2.Label("f") // duplicate (Func defines the label too)
	a2.I(isa.NOP)
	if _, err := a2.Finish(); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestPadTo(t *testing.T) {
	a := asm.New("t")
	a.Func("v0", 0)
	a.I(isa.JR(isa.RegK1))
	a.I(isa.RFE())
	a.PadTo(0x80)
	a.Label("v1")
	a.I(isa.JR(isa.RegK1))
	a.I(isa.RFE())
	f, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Text) != 0x80/4+2 {
		t.Errorf("text len %d", len(f.Text))
	}
}

func TestLIWidths(t *testing.T) {
	cases := []uint32{0, 1, 0xffff, 0x10000, 0x12345678, 0xffffffff, 0xffff8000}
	for _, v := range cases {
		a := asm.New("t")
		a.Func("f", 0)
		a.LI(isa.RegT0, v)
		a.I(isa.JR(isa.RegRA))
		a.I(isa.NOP)
		f, err := a.Finish()
		if err != nil {
			t.Fatal(err)
		}
		_ = f
	}
}

func TestDataEmission(t *testing.T) {
	a := asm.New("t")
	a.Func("f", 0)
	a.LA(isa.RegT0, "tbl", 0)
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	a.DataBytes("tbl", nil)
	a.DataAddrRaw("f")
	a.DataWordRaw(0x1234)
	a.Global("space", 100)
	f, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.DataRelocs) != 1 {
		t.Fatalf("data relocs %d", len(f.DataRelocs))
	}
	if f.BSSSize < 100 {
		t.Errorf("bss %d", f.BSSSize)
	}
	// LA produced HI16/LO16 text relocs.
	kinds := map[obj.RelKind]int{}
	for _, r := range f.Relocs {
		kinds[r.Kind]++
	}
	if kinds[obj.RelHI16] != 1 || kinds[obj.RelLO16] != 1 {
		t.Errorf("relocs %v", kinds)
	}
}
