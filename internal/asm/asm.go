// Package asm is a programmatic assembler producing relocatable object
// files. The traced kernels and the tracing runtime contain routines
// that are hand-written at this level — exactly the code the paper
// describes as "part of the tracing system" or "too delicate to be
// rewritten mechanically" (§3.3): bbtrace, memtrace, exception
// vectors, the UTLB miss handler, and the context switch path.
package asm

import (
	"fmt"
	"sort"

	"systrace/internal/isa"
	"systrace/internal/obj"
)

// FuncFlags configure how the instrumentation tools treat a function's
// basic blocks.
type FuncFlags uint16

const (
	// NoInstrument: epoxie must not rewrite this function.
	NoInstrument FuncFlags = 1 << iota
	// HandTraced: the function records its own trace entries.
	HandTraced
	// IdleLoop: the function is the kernel idle loop (counted block).
	IdleLoop
	// UTLBHandler: the user-TLB refill handler (never traced; the
	// simulator synthesizes its activity, paper §4.1).
	UTLBHandler
)

type fixup struct {
	off   uint32 // byte offset of the instruction in text
	label string
	kind  obj.RelKind // RelJ26 for jal/j to symbol; branch fixups use kindBranch
	isBr  bool
}

type funcSpan struct {
	name  string
	start uint32
	flags FuncFlags
}

// Assembler accumulates one object file.
type Assembler struct {
	name    string
	text    []isa.Word
	data    []byte
	bss     uint32
	syms    *obj.File // used only for symbol interning
	labels  map[string]uint32
	fixups  []fixup
	relocs  []obj.Reloc
	drelocs []obj.Reloc
	funcs   []funcSpan
	leaders map[uint32]bool
	err     error
}

// New returns an assembler for an object file with the given name.
func New(name string) *Assembler {
	return &Assembler{
		name:    name,
		syms:    &obj.File{Name: name},
		labels:  map[string]uint32{},
		leaders: map[uint32]bool{},
	}
}

func (a *Assembler) fail(format string, args ...any) {
	if a.err == nil {
		a.err = fmt.Errorf("asm %s: %s", a.name, fmt.Sprintf(format, args...))
	}
}

// PC returns the current text offset in bytes.
func (a *Assembler) PC() uint32 { return uint32(len(a.text)) * 4 }

// Func starts a new global function. Subsequent instructions belong to
// it until the next Func call.
func (a *Assembler) Func(name string, flags FuncFlags) {
	a.Label(name)
	a.syms.AddSym(obj.Symbol{Name: name, Section: obj.SecText, Off: a.PC(), Defined: true, Func: true})
	a.funcs = append(a.funcs, funcSpan{name: name, start: a.PC(), flags: flags})
}

// Label defines a local label at the current position. Labels are
// block leaders.
func (a *Assembler) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.fail("duplicate label %q", name)
	}
	a.labels[name] = a.PC()
	a.leaders[a.PC()] = true
}

// I emits a raw instruction word.
func (a *Assembler) I(w isa.Word) { a.text = append(a.text, w) }

// PadTo fills with NOPs up to the given text offset (for fixed-address
// entry points like exception vectors).
func (a *Assembler) PadTo(off uint32) {
	if a.PC() > off {
		a.fail("PadTo(0x%x): already at 0x%x", off, a.PC())
		return
	}
	for a.PC() < off {
		a.text = append(a.text, isa.NOP)
	}
}

// Is emits several instruction words.
func (a *Assembler) Is(ws ...isa.Word) { a.text = append(a.text, ws...) }

// Br emits a conditional branch to a local label. The caller supplies
// the branch with a zero offset; the assembler patches it. The next
// instruction emitted is the delay slot.
func (a *Assembler) Br(w isa.Word, label string) {
	a.fixups = append(a.fixups, fixup{off: a.PC(), label: label, isBr: true})
	a.text = append(a.text, w)
}

// JmpSym emits `j sym` (cross-object allowed) with a relocation.
func (a *Assembler) JmpSym(sym string) {
	si := a.syms.AddSym(obj.Symbol{Name: sym, Section: obj.SecText})
	a.relocs = append(a.relocs, obj.Reloc{Off: a.PC(), Kind: obj.RelJ26, Sym: si})
	a.text = append(a.text, isa.J(0))
}

// JalSym emits `jal sym` with a relocation.
func (a *Assembler) JalSym(sym string) {
	si := a.syms.AddSym(obj.Symbol{Name: sym, Section: obj.SecText})
	a.relocs = append(a.relocs, obj.Reloc{Off: a.PC(), Kind: obj.RelJ26, Sym: si})
	a.text = append(a.text, isa.JAL(0))
}

// Jmp emits `j label` to a local label.
func (a *Assembler) Jmp(label string) {
	a.fixups = append(a.fixups, fixup{off: a.PC(), label: label, kind: obj.RelJ26})
	a.text = append(a.text, isa.J(0))
}

// LA loads the address of sym+addend into register r using a lui/ori
// pair with HI16/LO16 relocations (two instructions).
func (a *Assembler) LA(r int, sym string, addend int32) {
	si := a.syms.AddSym(obj.Symbol{Name: sym, Section: obj.SecData})
	a.relocs = append(a.relocs, obj.Reloc{Off: a.PC(), Kind: obj.RelHI16, Sym: si, Addend: addend})
	a.text = append(a.text, isa.LUI(r, 0))
	a.relocs = append(a.relocs, obj.Reloc{Off: a.PC(), Kind: obj.RelLO16, Sym: si, Addend: addend})
	a.text = append(a.text, isa.ADDIU(r, r, 0))
}

// LI loads a 32-bit constant into register r (one or two
// instructions).
func (a *Assembler) LI(r int, v uint32) {
	if v>>16 == 0 {
		a.text = append(a.text, isa.ORI(r, isa.RegZero, uint16(v)))
		return
	}
	if int32(v) < 0 && int32(v) >= -32768 {
		a.text = append(a.text, isa.ADDIU(r, isa.RegZero, uint16(v)))
		return
	}
	a.text = append(a.text, isa.LUI(r, uint16(v>>16)))
	if v&0xffff != 0 {
		a.text = append(a.text, isa.ORI(r, r, uint16(v)))
	}
}

// Global reserves a zero-initialized data object of the given size in
// BSS and defines sym at its start. Alignment is 8 bytes.
func (a *Assembler) Global(sym string, size uint32) {
	a.bss = (a.bss + 7) &^ 7
	a.syms.AddSym(obj.Symbol{Name: sym, Section: obj.SecBSS, Off: a.bss, Defined: true})
	a.bss += size
}

// DataBytes emits initialized data and defines sym at its start.
func (a *Assembler) DataBytes(sym string, b []byte) {
	for len(a.data)%8 != 0 {
		a.data = append(a.data, 0)
	}
	a.syms.AddSym(obj.Symbol{Name: sym, Section: obj.SecData, Off: uint32(len(a.data)), Defined: true})
	a.data = append(a.data, b...)
}

// DataWordRaw appends one word of initialized data with no alignment
// and no symbol (table continuation).
func (a *Assembler) DataWordRaw(v uint32) {
	a.data = append(a.data, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// DataAddrRaw appends one relocated address word with no alignment and
// no symbol (table continuation).
func (a *Assembler) DataAddrRaw(target string) {
	si := a.syms.AddSym(obj.Symbol{Name: target, Section: obj.SecText})
	a.drelocs = append(a.drelocs, obj.Reloc{Off: uint32(len(a.data)), Kind: obj.RelWord, Sym: si})
	a.data = append(a.data, 0, 0, 0, 0)
}

// DataWordSym emits a data word holding the address of another symbol
// plus addend (the linker applies the addend for every reloc kind, so
// jump-table slots may name interior labels as sym+offset).
func (a *Assembler) DataWordSym(sym string, target string, addend int32) {
	for len(a.data)%8 != 0 {
		a.data = append(a.data, 0)
	}
	if sym != "" {
		a.syms.AddSym(obj.Symbol{Name: sym, Section: obj.SecData, Off: uint32(len(a.data)), Defined: true})
	}
	si := a.syms.AddSym(obj.Symbol{Name: target, Section: obj.SecText})
	a.drelocs = append(a.drelocs, obj.Reloc{Off: uint32(len(a.data)), Kind: obj.RelWord, Sym: si, Addend: addend})
	a.data = append(a.data, 0, 0, 0, 0)
}

// Finish resolves local fixups, derives the basic-block table, and
// returns the object file.
func (a *Assembler) Finish() (*obj.File, error) {
	for _, fx := range a.fixups {
		target, ok := a.labels[fx.label]
		if !ok {
			a.fail("undefined label %q", fx.label)
			continue
		}
		i := fx.off / 4
		if fx.isBr {
			// Branch offset is relative to the delay slot.
			diff := int32(target) - int32(fx.off+4)
			if diff%4 != 0 || diff/4 > 32767 || diff/4 < -32768 {
				a.fail("branch to %q out of range (%d bytes)", fx.label, diff)
				continue
			}
			a.text[i] = a.text[i]&0xffff0000 | uint32(uint16(diff/4))
		} else {
			// Local jump: leave a self-relative relocation against a
			// synthetic section-start symbol so the linker patches the
			// absolute target.
			si := a.syms.AddSym(obj.Symbol{Name: ".text." + a.name, Section: obj.SecText, Off: 0, Defined: true})
			a.relocs = append(a.relocs, obj.Reloc{Off: fx.off, Kind: obj.RelJ26, Sym: si, Addend: int32(target)})
		}
	}
	if a.err != nil {
		return nil, a.err
	}

	f := &obj.File{
		Name:       a.name,
		Text:       a.text,
		Data:       a.data,
		BSSSize:    a.bss,
		Syms:       a.syms.Syms,
		Relocs:     a.relocs,
		DataRelocs: a.drelocs,
	}
	f.Blocks = a.deriveBlocks()
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// MustFinish is Finish for hand-written code that is part of the
// build; errors are toolchain bugs.
func (a *Assembler) MustFinish() *obj.File {
	f, err := a.Finish()
	if err != nil {
		panic(err)
	}
	return f
}

func (a *Assembler) deriveBlocks() []obj.BasicBlock {
	// Leaders: function starts, labels, and the instruction after a
	// block terminator (branch/jump plus its delay slot, or
	// syscall/break).
	leaders := map[uint32]bool{0: true}
	for off := range a.leaders {
		leaders[off] = true
	}
	for i := 0; i < len(a.text); i++ {
		w := a.text[i]
		if isa.HasDelaySlot(w) {
			leaders[uint32(i+2)*4] = true
		} else if isa.EndsBlock(w) {
			leaders[uint32(i+1)*4] = true
		}
	}
	var offs []uint32
	for off := range leaders {
		if off < uint32(len(a.text))*4 {
			offs = append(offs, off)
		}
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })

	flagsAt := func(off uint32) obj.BBFlags {
		var fl obj.BBFlags
		for i := len(a.funcs) - 1; i >= 0; i-- {
			if a.funcs[i].start <= off {
				ff := a.funcs[i].flags
				if ff&NoInstrument != 0 {
					fl |= obj.BBNoInstrument
				}
				if ff&HandTraced != 0 {
					fl |= obj.BBHandTraced
				}
				if ff&IdleLoop != 0 {
					fl |= obj.BBIdleLoop
				}
				if ff&UTLBHandler != 0 {
					fl |= obj.BBUTLBHandler | obj.BBNoInstrument
				}
				break
			}
		}
		return fl
	}

	var blocks []obj.BasicBlock
	for bi, off := range offs {
		end := uint32(len(a.text)) * 4
		if bi+1 < len(offs) {
			end = offs[bi+1]
		}
		if end <= off {
			continue
		}
		b := obj.BasicBlock{Off: off, NInstr: int32((end - off) / 4), Flags: flagsAt(off)}
		for k := int32(0); k < b.NInstr; k++ {
			w := a.text[off/4+uint32(k)]
			if isa.IsMem(w) {
				b.Mem = append(b.Mem, obj.MemOp{Index: int16(k), Load: isa.IsLoad(w), Size: int8(isa.MemSize(w))})
			}
		}
		blocks = append(blocks, b)
	}
	return blocks
}
