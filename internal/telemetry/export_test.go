package telemetry

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden export files")

// goldenRegistry builds a registry with every series shape the
// exporters must handle: plain and labeled counters, gauges, sampled
// series, and histograms both populated and empty (the empty one is
// what the JSON exporter used to get wrong: it must still carry
// count/sum/buckets, as Prometheus always writes _sum/_count/+Inf).
func goldenRegistry() *Registry {
	r := New()
	r.Counter("golden_instructions_total", "instructions retired").Add(12345)
	r.Counter("golden_flushes_total", "buffer flushes", L("run", "traced"), L("pid", "2")).Add(7)
	r.Gauge("golden_dilation_ratio", "time dilation").Set(2.25)
	r.Sample("golden_sampled_total", "sampled counter", func() uint64 { return 99 })
	r.SampleGauge("golden_depth", "queue depth", func() float64 { return 1.5 })
	h := r.Histogram("golden_flush_words", "words per flush")
	h.Observe(0)
	h.Observe(1)
	h.Observe(5)
	h.Observe(5000)
	r.Histogram("golden_empty_words", "histogram with no observations")
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestExportGoldenJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "export.json", buf.Bytes())
}

func TestExportGoldenPrometheus(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "export.prom", buf.Bytes())
}

// TestExportersAgreeOnHistograms pins the contract the golden files
// witness: every histogram series, populated or not, exposes
// count/sum/buckets in JSON exactly when Prometheus writes
// _count/_sum/bucket lines for it.
func TestExportersAgreeOnHistograms(t *testing.T) {
	snap := goldenRegistry().Snapshot()
	for _, name := range []string{"golden_flush_words", "golden_empty_words"} {
		m, ok := snap.Get(name)
		if !ok {
			t.Fatalf("%s missing from snapshot", name)
		}
		var js bytes.Buffer
		if err := snap.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{`"count"`, `"sum"`, `"buckets"`} {
			if !bytes.Contains(js.Bytes(), []byte(key)) {
				t.Errorf("JSON export of %s lacks %s", name, key)
			}
		}
		// The cumulative count of the last bucket never exceeds the
		// +Inf count (the "count" field).
		if n := len(m.Buckets); n > 0 && m.Buckets[n-1].Count > m.Count {
			t.Errorf("%s: last bucket %d > count %d", name, m.Buckets[n-1].Count, m.Count)
		}
	}
}

// TestRegistryConcurrentUse hammers handle updates, late registration,
// and both exporters from many goroutines at once; run under -race in
// scripts/check.sh it proves the registry's concurrency contract.
func TestRegistryConcurrentUse(t *testing.T) {
	r := New()
	c := r.Counter("hammer_ops_total", "ops")
	g := r.Gauge("hammer_level", "level")
	h := r.Histogram("hammer_sizes_words", "sizes")
	var shared uint64 = 42
	r.Sample("hammer_sampled_total", "sampled", func() uint64 { return shared })

	const workers = 8
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := L("worker", string(rune('a'+w)))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(uint64(i))
				if i%100 == 0 {
					r.Counter("hammer_late_total", "registered mid-run", lbl).Add(1)
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := r.WritePrometheus(io.Discard); err != nil {
					t.Error(err)
				}
				if err := r.WriteJSON(io.Discard); err != nil {
					t.Error(err)
				}
			}
		}()
	}
	wg.Wait()

	snap := r.Snapshot()
	m, ok := snap.Get("hammer_ops_total")
	if !ok || m.Value != workers*iters {
		t.Errorf("hammer_ops_total = %v, want %d", m.Value, workers*iters)
	}
	hm, ok := snap.Get("hammer_sizes_words")
	if !ok || hm.Count != workers*iters {
		t.Errorf("hammer_sizes_words count = %d, want %d", hm.Count, workers*iters)
	}
}
