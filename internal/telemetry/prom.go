package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// escapeLabel escapes a Prometheus label value: backslash, double
// quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a Prometheus HELP string: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabels renders {k="v",...} from an exported metric's label map,
// in sorted key order; extra appends additional pairs (for le).
func promLabels(m Metric, extra ...Label) string {
	var ls []Label
	for k, v := range m.Labels {
		ls = append(ls, Label{k, v})
	}
	for i := 0; i < len(ls); i++ {
		for j := i + 1; j < len(ls); j++ {
			if ls[j].Key < ls[i].Key {
				ls[i], ls[j] = ls[j], ls[i]
			}
		}
	}
	ls = append(ls, extra...)
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// promValue formats a sample value: integral values render without an
// exponent or trailing zeros.
func promValue(v float64) string {
	if v == float64(uint64(v)) && v >= 0 {
		return strconv.FormatUint(uint64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4). Families are sorted by name, with
// one HELP/TYPE header per family.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	lastFamily := ""
	for _, m := range s.Metrics {
		if m.Name != lastFamily {
			lastFamily = m.Name
			if m.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, escapeHelp(m.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
				return err
			}
		}
		switch m.Kind {
		case "histogram":
			for _, b := range m.Buckets {
				_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name,
					promLabels(m, L("le", strconv.FormatUint(b.Le, 10))), b.Count)
				if err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", m.Name,
				promLabels(m, L("le", "+Inf")), m.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.Name, promLabels(m), m.Sum); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, promLabels(m), m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", m.Name, promLabels(m), promValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WritePrometheus renders the registry's current state; see
// Snapshot.WritePrometheus.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}
