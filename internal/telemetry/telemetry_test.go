package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "a counter")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	// Registration is idempotent: same handle comes back.
	if c2 := r.Counter("c_total", "a counter"); c2 != c {
		t.Fatal("re-registration returned a different handle")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	h := r.Histogram("h", "a histogram")
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1010 {
		t.Fatalf("hist count=%d sum=%d, want 6/1010", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	m, ok := snap.Get("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	// Buckets are cumulative with empty buckets elided:
	// 0 -> 1, 1 -> 2, 3 -> 4, 7 -> 5, 1023 -> 6.
	want := []BucketCount{{0, 1}, {1, 2}, {3, 4}, {7, 5}, {1023, 6}}
	if len(m.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", m.Buckets, want)
	}
	for i := range want {
		if m.Buckets[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, m.Buckets[i], want[i])
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Add(1)
	c.Inc()
	r.Gauge("g", "").Set(1)
	r.Histogram("h", "").Observe(1)
	r.Sample("s", "", func() uint64 { return 0 })
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	if n := len(r.Snapshot().Metrics); n != 0 {
		t.Fatalf("nil registry snapshot has %d metrics", n)
	}
}

func TestSampledCounter(t *testing.T) {
	r := New()
	v := uint64(7)
	r.Sample("ext_total", "sampled", func() uint64 { return v })
	v = 42
	m, ok := r.Snapshot().Get("ext_total")
	if !ok || m.Value != 42 {
		t.Fatalf("sampled = %+v ok=%v, want value 42", m, ok)
	}
}

func TestSampledGauge(t *testing.T) {
	r := New()
	v := 1.5
	r.SampleGauge("depth_max", "sampled level", func() float64 { return v })
	v = 3.0
	m, ok := r.Snapshot().Get("depth_max")
	if !ok || m.Value != 3.0 || m.Kind != "gauge" {
		t.Fatalf("sampled gauge = %+v ok=%v, want gauge value 3", m, ok)
	}
	// Re-registering as a plain gauge must not displace the sampler.
	r.Gauge("depth_max", "sampled level")
	if m, _ := r.Snapshot().Get("depth_max"); m.Value != 3.0 {
		t.Fatalf("sampler displaced: %+v", m)
	}
}

// TestHotPathAllocs is the hard guarantee behind instrumenting the
// interpreter loop: recording into pre-registered handles never
// allocates.
func TestHotPathAllocs(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		g.Set(1.5)
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := New()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Value() != uint64(b.N) {
		b.Fatal("count mismatch")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("bench_hist", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

// TestPrometheusGolden pins the text exposition output: family
// ordering (sorted by name), label ordering (sorted by key), one
// HELP/TYPE per family, histogram bucket/sum/count lines, and
// help/label escaping.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.Counter("zz_total", "last family", L("b", "2"), L("a", "1")).Add(9)
	r.Counter("aa_total", `help with \ backslash
and newline`).Add(1)
	r.Gauge("mid_gauge", "a gauge", L("q", `quote " slash \`)).Set(1.25)
	h := r.Histogram("hist_words", "flush sizes")
	h.Observe(0)
	h.Observe(3)
	h.Observe(3)
	r.Counter("aa_total", "help with more", L("k", "v")).Add(5)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_total help with \\ backslash\nand newline
# TYPE aa_total counter
aa_total 1
aa_total{k="v"} 5
# HELP hist_words flush sizes
# TYPE hist_words histogram
hist_words_bucket{le="0"} 1
hist_words_bucket{le="3"} 3
hist_words_bucket{le="+Inf"} 3
hist_words_sum 6
hist_words_count 3
# HELP mid_gauge a gauge
# TYPE mid_gauge gauge
mid_gauge{q="quote \" slash \\"} 1.25
# HELP zz_total last family
# TYPE zz_total counter
zz_total{a="1",b="2"} 9
`
	if got := b.String(); got != want {
		t.Fatalf("prometheus output mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestJSONExport(t *testing.T) {
	r := New()
	r.Counter("c_total", "counts", L("run", "traced")).Add(11)
	r.Histogram("h", "sizes").Observe(100)
	var b bytes.Buffer
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Kind   string            `json:"kind"`
			Value  float64           `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("got %d metrics, want 2", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "c_total" || doc.Metrics[0].Value != 11 ||
		doc.Metrics[0].Labels["run"] != "traced" {
		t.Fatalf("unexpected first metric: %+v", doc.Metrics[0])
	}
	if !strings.Contains(b.String(), `"kind": "histogram"`) {
		t.Fatal("histogram kind missing from JSON")
	}
}

func TestKindConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r := New()
	r.Counter("x_total", "")
	r.Gauge("x_total", "")
}
