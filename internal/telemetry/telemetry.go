// Package telemetry is the system-wide metrics layer: a dependency-free
// registry of counters, gauges, and fixed-bucket log2 histograms, with
// machine-readable exporters (Prometheus text and JSON).
//
// The design constraint is the paper's own: a tracing system must
// measure itself without distorting what it measures (§4). Handles are
// pre-registered once, and the hot-path operations — Counter.Add,
// Gauge.Set, Histogram.Observe — are single uncontended atomic updates
// on pre-allocated structs: no locks, no maps, no allocation, so the
// CPU interpreter loop and the kernel flush path can record events
// without slowing the tier-1 benchmarks.
//
// A Registry is safe for concurrent use: registration and snapshotting
// take an internal lock, and handle updates are atomic, so the
// experiment runner's parallel jobs and a live exporter (tracesys
// -serve) can share one registry. The one caveat is Sample closures:
// they read whatever state the subsystem exposes (often plain uint64
// statistics owned by a machine goroutine), so a snapshot taken while
// a simulation runs sees slightly stale values for those series —
// acceptable for live monitoring, exact once the run has finished.
//
// All handle methods are nil-receiver safe: a subsystem built without a
// registry attached records into nil handles at zero cost, so
// instrumentation can be wired unconditionally.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a registered metric for the exporters.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one constant name/value pair attached to a metric at
// registration time (e.g. run="traced", pid="2").
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; Add on a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64 (for computed quantities like dilation
// factors). Set on a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64 // Float64bits of the value
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// NHistBuckets is the fixed bucket count of a Histogram: bucket i
// holds observations whose bit length is i, i.e. bucket 0 holds the
// value 0 and bucket i (i>0) holds values in [2^(i-1), 2^i - 1]. The
// exporters report cumulative counts with upper bounds 2^i - 1.
const NHistBuckets = 65

// Histogram counts observations in fixed log2 buckets. The zero value
// is ready to use; Observe on a nil *Histogram is a no-op. Concurrent
// observers update disjoint atomics, so a snapshot racing an Observe
// may see the bucket before the count — cumulative totals are still
// monotone, which is all the exporters promise mid-run.
type Histogram struct {
	buckets [NHistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// metric is one registered series.
type metric struct {
	name   string // metric family name
	id     string // name plus rendered label set (registry key)
	help   string
	kind   Kind
	labels []Label // sorted by key

	c   *Counter
	g   *Gauge
	h   *Histogram
	fn  func() uint64  // sampled counter (read at snapshot time)
	gfn func() float64 // sampled gauge (read at snapshot time)
}

// Registry holds registered metrics. The zero value is not usable; use
// New. All methods on a nil *Registry are no-ops returning nil handles,
// so instrumentation can be attached unconditionally. Registration and
// snapshotting are safe to call concurrently; see the package comment
// for the Sample-closure caveat.
type Registry struct {
	mu    sync.RWMutex
	byID  map[string]*metric
	order []*metric
}

// New returns an empty registry.
func New() *Registry { return &Registry{byID: map[string]*metric{}} }

// validName matches the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// metricID renders the registry key: name{k1="v1",k2="v2"} with labels
// sorted by key.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// register adds (or finds) a series. Registration is idempotent for an
// identical (name, labels, kind) triple; re-registering under a
// different kind panics, as that is a programming error. The caller
// must hold r.mu.
func (r *Registry) register(name, help string, kind Kind, labels []Label) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for _, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %s", l.Key, name))
		}
	}
	id := metricID(name, ls)
	if m, ok := r.byID[id]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %v (was %v)", id, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, id: id, help: help, kind: kind, labels: ls}
	r.byID[id] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or finds) a counter series and returns its handle.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.register(name, help, KindCounter, labels)
	if m.c == nil && m.fn == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge registers (or finds) a gauge series and returns its handle.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.register(name, help, KindGauge, labels)
	if m.g == nil && m.gfn == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram registers (or finds) a log2-bucket histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.register(name, help, KindHistogram, labels)
	if m.h == nil {
		m.h = &Histogram{}
	}
	return m.h
}

// Sample registers a counter series whose value is read by calling fn
// at snapshot time. This instruments subsystems that already maintain
// their own uint64 statistics (cpu.Stats, device counters, parser
// counters) without adding any work to their hot paths.
func (r *Registry) Sample(name, help string, fn func() uint64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.register(name, help, KindCounter, labels)
	m.fn = fn
	m.c = nil
}

// SampleGauge registers a gauge series whose value is read by calling
// fn at snapshot time — the level-typed counterpart of Sample, for
// quantities that can move both ways (depths, ratios, watermarks).
func (r *Registry) SampleGauge(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.register(name, help, KindGauge, labels)
	m.gfn = fn
	m.g = nil
}

// BucketCount is one cumulative histogram bucket: Count observations
// were <= Le.
type BucketCount struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// Metric is one exported series value.
type Metric struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Kind    string            `json:"kind"`
	Help    string            `json:"help,omitempty"`
	Value   float64           `json:"value"`
	Count   uint64            `json:"count,omitempty"`
	Sum     uint64            `json:"sum,omitempty"`
	Buckets []BucketCount     `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time export of every registered series,
// sorted by metric name then label set.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot samples every series.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	ms := append([]*metric(nil), r.order...)
	r.mu.RUnlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].id < ms[j].id
	})
	out := Snapshot{Metrics: make([]Metric, 0, len(ms))}
	for _, m := range ms {
		e := Metric{Name: m.name, Kind: m.kind.String(), Help: m.help}
		if len(m.labels) > 0 {
			e.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				e.Labels[l.Key] = l.Value
			}
		}
		switch m.kind {
		case KindCounter:
			if m.fn != nil {
				e.Value = float64(m.fn())
			} else {
				e.Value = float64(m.c.Value())
			}
		case KindGauge:
			if m.gfn != nil {
				e.Value = m.gfn()
			} else {
				e.Value = m.g.Value()
			}
		case KindHistogram:
			e.Count = m.h.Count()
			e.Sum = m.h.Sum()
			e.Value = float64(m.h.Sum())
			// Cumulative counts; empty buckets are elided.
			var cum uint64
			for i := range m.h.buckets {
				c := m.h.buckets[i].Load()
				if c == 0 {
					continue
				}
				cum += c
				le := uint64(1)<<uint(i) - 1 // bucket i upper bound
				e.Buckets = append(e.Buckets, BucketCount{Le: le, Count: cum})
			}
		}
		out.Metrics = append(out.Metrics, e)
	}
	return out
}

// Get finds a series in the snapshot by name and exact label set.
func (s Snapshot) Get(name string, labels ...Label) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name != name || len(m.Labels) != len(labels) {
			continue
		}
		match := true
		for _, l := range labels {
			if m.Labels[l.Key] != l.Value {
				match = false
				break
			}
		}
		if match {
			return m, true
		}
	}
	return Metric{}, false
}
