package telemetry

import (
	"encoding/json"
	"io"
)

// WriteJSON renders the snapshot as an indented JSON document:
// {"metrics":[{"name":...,"labels":{...},"kind":...,"value":...},...]}.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON renders the registry's current state; see
// Snapshot.WriteJSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}
