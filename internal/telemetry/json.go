package telemetry

import (
	"encoding/json"
	"io"
)

// MarshalJSON renders one series. Histograms always carry their
// count, sum, and cumulative bucket list — even when no observation
// has been recorded — mirroring the Prometheus exporter, which always
// writes the +Inf bucket, _sum, and _count lines for a histogram
// family. Counters and gauges stay minimal: name, labels, kind, help,
// value. (The bucket list elides empty buckets; the +Inf bound has no
// uint64 representation, so its cumulative count is the "count"
// field, exactly as le="+Inf" equals _count in the text format.)
func (m Metric) MarshalJSON() ([]byte, error) {
	type scalar struct {
		Name   string            `json:"name"`
		Labels map[string]string `json:"labels,omitempty"`
		Kind   string            `json:"kind"`
		Help   string            `json:"help,omitempty"`
		Value  float64           `json:"value"`
	}
	s := scalar{m.Name, m.Labels, m.Kind, m.Help, m.Value}
	if m.Kind != KindHistogram.String() {
		return json.Marshal(s)
	}
	buckets := m.Buckets
	if buckets == nil {
		buckets = []BucketCount{}
	}
	return json.Marshal(struct {
		scalar
		Count   uint64        `json:"count"`
		Sum     uint64        `json:"sum"`
		Buckets []BucketCount `json:"buckets"`
	}{s, m.Count, m.Sum, buckets})
}

// WriteJSON renders the snapshot as an indented JSON document:
// {"metrics":[{"name":...,"labels":{...},"kind":...,"value":...},...]};
// histogram entries additionally carry "count", "sum", and "buckets".
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON renders the registry's current state; see
// Snapshot.WriteJSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}
