package systrace_test

// One benchmark per table and figure of the paper. Each regenerates
// its artifact and reports the headline quantities as custom metrics,
// so `go test -bench=. -benchmem` reproduces the whole evaluation on a
// representative subset (cmd/experiments runs the full twelve-workload
// suite).

import (
	"testing"

	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/trace"
	"systrace/internal/workload"
)

// benchSpecs is the subset used by the benchmarks: an I/O-bound
// program, the biggest integer program, pure recursion, and the
// store-heavy FP loops.
func benchSpecs(b *testing.B, names ...string) []workload.Spec {
	b.Helper()
	if len(names) == 0 {
		names = []string{"sed", "compress", "lisp", "liv"}
	}
	var specs []workload.Spec
	for _, n := range names {
		s, ok := workload.ByName(n)
		if !ok {
			b.Fatalf("no workload %q", n)
		}
		specs = append(specs, s)
	}
	return specs
}

func BenchmarkTable1Workloads(b *testing.B) {
	specs := benchSpecs(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Table1(specs)
		if err != nil {
			b.Fatal(err)
		}
		var total float64
		for _, r := range rows {
			total += r.Seconds
		}
		b.ReportMetric(total, "simsec/suite")
	}
}

func BenchmarkTable2RunTimes(b *testing.B) {
	specs := benchSpecs(b, "sed", "lisp")
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Table2(specs)
		if err != nil {
			b.Fatal(err)
		}
		var maxErr float64
		for _, r := range rows {
			e := experiment.Row{Name: r.Name, Measured: r.UltrixMeasured, Predicted: r.UltrixPredicted}.PercentError()
			if e < 0 {
				e = -e
			}
			if e > maxErr {
				maxErr = e
			}
		}
		b.ReportMetric(maxErr, "max%err")
	}
}

func BenchmarkFigure3PredictionError(b *testing.B) {
	specs := benchSpecs(b, "sed", "lisp")
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Table2(specs)
		if err != nil {
			b.Fatal(err)
		}
		var sum float64
		for _, r := range experiment.Figure3(rows) {
			e := r.PercentError()
			if e < 0 {
				e = -e
			}
			sum += e
		}
		b.ReportMetric(sum/float64(len(rows)), "mean%err")
	}
}

func BenchmarkTable3TLBMisses(b *testing.B) {
	specs := benchSpecs(b, "sed", "tomcatv")
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Table3(specs)
		if err != nil {
			b.Fatal(err)
		}
		// Report the Mach/Ultrix miss ratio of the I/O-bound workload:
		// the paper's signature result is Mach >> Ultrix there.
		r := rows[0]
		if r.UltrixMeasured > 0 {
			b.ReportMetric(float64(r.MachMeasured)/float64(r.UltrixMeasured), "mach/ultrix")
		}
	}
}

func BenchmarkFigure2Instrumentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := experiment.Figure2()
		if len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure1TraceFlow(b *testing.B) {
	spec, _ := workload.ByName("sed")
	for i := 0; i < b.N; i++ {
		pred, err := experiment.Predict(spec, kernel.Ultrix, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(pred.TraceWords), "tracewords")
		b.ReportMetric(float64(pred.Events), "events")
	}
}

func BenchmarkTextGrowth(b *testing.B) {
	specs := benchSpecs(b, "gcc")
	for i := 0; i < b.N; i++ {
		rows, err := experiment.TextGrowth(specs)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Tool {
			case "epoxie":
				b.ReportMetric(r.Factor, "epoxie-x")
			case "pixie":
				b.ReportMetric(r.Factor, "pixie-x")
			}
		}
	}
}

func BenchmarkTimeDilation(b *testing.B) {
	specs := benchSpecs(b, "lisp")
	for i := 0; i < b.N; i++ {
		rows, err := experiment.TimeDilation(specs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Factor, "slowdown-x")
	}
}

func BenchmarkBufferSizing(b *testing.B) {
	spec, _ := workload.ByName("sed")
	for i := 0; i < b.N; i++ {
		rows, err := experiment.BufferSizing(spec, []uint32{256 << 10, 2 << 20})
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].ModeSwitches < rows[1].ModeSwitches {
			b.Fatal("smaller buffer should switch modes at least as often")
		}
		b.ReportMetric(rows[1].InstrPerPhase, "instr/phase")
	}
}

func BenchmarkTunixKernelCPI(b *testing.B) {
	spec, _ := workload.ByName("sed")
	for i := 0; i < b.N; i++ {
		res, err := experiment.KernelCPI(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Ratio, "kcpi/ucpi")
	}
}

func BenchmarkPageMappingVariance(b *testing.B) {
	spec, _ := workload.ByName("tomcatv")
	for i := 0; i < b.N; i++ {
		res, err := experiment.PageMappingVariance(spec, []uint32{3, 17, 91})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SpreadPercent, "spread%")
		b.ReportMetric(res.SystemFraction*100, "sys%")
	}
}

func BenchmarkErrorSources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.ErrorSources([]string{"sed", "liv"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[1].FPOverlapCycles), "fp-overlap-cyc")
	}
}

func BenchmarkDefensiveTracing(b *testing.B) {
	// Detection probability of single-word corruptions on a live
	// system trace (E13, §4.3).
	spec, _ := workload.ByName("lisp")
	pred, err := experiment.Predict(spec, kernel.Ultrix, 1)
	if err != nil {
		b.Fatal(err)
	}
	_ = pred
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		detected, total, err := experiment.CorruptionDetection(spec)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(detected)/float64(total)*100, "detect%")
	}
	_ = trace.MarkerBase
}

// suite runs a multi-table slice of the evaluation (the run sets of
// Table 1/2/3, Figure 3, the dilation study, the error anatomy, and
// the CPI probe all overlap) through one Runner.
func suite(b *testing.B, r *experiment.Runner, specs []workload.Spec) {
	b.Helper()
	if _, err := r.Table1(specs); err != nil {
		b.Fatal(err)
	}
	t2, err := r.Table2(specs)
	if err != nil {
		b.Fatal(err)
	}
	_ = experiment.Figure3(t2)
	if _, err := r.Table3(specs); err != nil {
		b.Fatal(err)
	}
	if _, err := r.TimeDilation(specs); err != nil {
		b.Fatal(err)
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	if _, err := r.ErrorSources(names); err != nil {
		b.Fatal(err)
	}
	if _, err := r.KernelCPI(specs[0]); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSuite measures the orchestrator's effect on the evaluation:
// "naive" re-creates a Runner per table at one worker (the historical
// cost, every table re-simulating its own runs), "j1" shares one
// memoizing Runner serially, "j4" adds a 4-worker pool. Results land
// in BENCH_runner.json.
func BenchmarkSuite(b *testing.B) {
	specs := benchSpecs(b, "sed", "lisp")
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// A fresh 1-worker Runner per table: no sharing across
			// tables, no parallelism — the pre-orchestrator behavior.
			suiteNaive(b, specs)
		}
	})
	b.Run("j1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := experiment.NewRunner(1)
			suite(b, r, specs)
			reportDedup(b, r)
		}
	})
	b.Run("j4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := experiment.NewRunner(4)
			suite(b, r, specs)
			reportDedup(b, r)
		}
	})
}

// suiteNaive is the same slice of the evaluation with a fresh
// single-worker Runner per table: no result sharing, no parallelism —
// what each package-level table function did before the orchestrator.
func suiteNaive(b *testing.B, specs []workload.Spec) {
	b.Helper()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	if _, err := experiment.NewRunner(1).Table1(specs); err != nil {
		b.Fatal(err)
	}
	t2, err := experiment.NewRunner(1).Table2(specs)
	if err != nil {
		b.Fatal(err)
	}
	_ = experiment.Figure3(t2)
	if _, err := experiment.NewRunner(1).Table3(specs); err != nil {
		b.Fatal(err)
	}
	if _, err := experiment.NewRunner(1).TimeDilation(specs); err != nil {
		b.Fatal(err)
	}
	if _, err := experiment.NewRunner(1).ErrorSources(names); err != nil {
		b.Fatal(err)
	}
	if _, err := experiment.NewRunner(1).KernelCPI(specs[0]); err != nil {
		b.Fatal(err)
	}
}

func reportDedup(b *testing.B, r *experiment.Runner) {
	b.Helper()
	s := r.Stats()
	b.ReportMetric(float64(s.Executed), "runs")
	b.ReportMetric(float64(s.Deduplicated()), "memoized")
}
