package systrace_test

// End-to-end smoke test of the observability layer: one traced sed
// boot with the guest-PC sampler attached must leave a well-nested
// phase-span timeline (system_boot, then machine_run with the
// trace_drain analysis phases inside it) and a non-empty folded
// profile that attributes samples to kernel functions. This is the
// check scripts/check.sh runs as its obs smoke step.

import (
	"bytes"
	"strings"
	"testing"

	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/obj"
	obspkg "systrace/internal/obs"
	"systrace/internal/workload"
)

func TestObsSmoke(t *testing.T) {
	obspkg.Reset()
	spec, ok := workload.ByName("sed")
	if !ok {
		t.Fatal("no sed workload")
	}
	prof := obspkg.NewProfile()
	sys, _, err := experiment.Boot(spec, kernel.Ultrix, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	sys.M.CPU.SetProfiler(4096, prof.Hit)
	if err := sys.Run(experiment.RunBudget); err != nil {
		t.Fatal(err)
	}

	tl := obspkg.Timeline()
	byName := map[string][]obspkg.SpanInfo{}
	for _, s := range tl {
		byName[s.Name] = append(byName[s.Name], s)
	}
	for _, name := range []string{"system_boot", "machine_run", "trace_drain"} {
		if len(byName[name]) == 0 {
			t.Fatalf("no %s span in timeline (%d spans total)", name, len(tl))
		}
	}
	boot := byName["system_boot"][0]
	run := byName["machine_run"][0]
	if boot.Open() || run.Open() {
		t.Fatalf("boot/run spans left open: %+v %+v", boot, run)
	}
	if boot.EndNs > run.StartNs {
		t.Errorf("system_boot [%d,%d] should close before machine_run starts at %d",
			boot.StartNs, boot.EndNs, run.StartNs)
	}
	// Every trace-drain analysis phase happens inside the machine run,
	// on the run's goroutine, directly nested under its span.
	if sys.Doorbells == 0 {
		t.Fatal("traced sed boot rang no doorbells")
	}
	for _, d := range byName["trace_drain"] {
		if d.Parent != run.ID {
			t.Errorf("trace_drain span %d has parent %d, want machine_run %d", d.ID, d.Parent, run.ID)
		}
		if d.GID != run.GID {
			t.Errorf("trace_drain span %d on goroutine %d, machine_run on %d", d.ID, d.GID, run.GID)
		}
		if d.Depth != run.Depth+1 {
			t.Errorf("trace_drain span %d at depth %d, want %d", d.ID, d.Depth, run.Depth+1)
		}
		if d.Open() || d.StartNs < run.StartNs || d.EndNs > run.EndNs {
			t.Errorf("trace_drain span %d [%d,%d] not inside machine_run [%d,%d]",
				d.ID, d.StartNs, d.EndNs, run.StartNs, run.EndNs)
		}
	}

	if prof.Len() == 0 {
		t.Fatal("profiler took no samples")
	}
	procs := map[uint32]*obj.Executable{}
	for i, bp := range sys.Procs {
		procs[uint32(i+1)] = bp.Exe
	}
	var folded bytes.Buffer
	prof.WriteFolded(&folded, obspkg.NewImageResolver(sys.Kernel, procs))
	out := folded.String()
	if out == "" {
		t.Fatal("folded profile is empty")
	}
	if !strings.Contains(out, "kernel;") {
		t.Errorf("folded profile attributes nothing to the kernel:\n%.500s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("folded line %q is not \"stack value\"", line)
		}
	}
}
